// RPC + remotable-completion layer (pm2/rpc, pm2/completion): local and
// remote calls, typed marshalling round-trips, forwarded and counted
// completions, concurrent outstanding RPCs — across 1–8 node worlds in
// both progression modes — plus engine-invariant checks after every run
// and a seeded fuzz+fault soak on a lossy fabric
// (PM2_FUZZ_SOAK_SEEDS deepens it in CI).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "pm2/cluster.hpp"
#include "pm2/completion.hpp"
#include "pm2/rpc.hpp"

namespace pm2::rpc {
namespace {

using Param = std::tuple<unsigned /*nodes*/, bool /*pioman*/>;

constexpr std::uint32_t kEcho = 1;     // validates marshalled args
constexpr std::uint32_t kForward = 2;  // re-calls kEcho on another node
constexpr std::uint32_t kTouch = 3;    // signals and returns

struct WorldOptions {
  bool faults = false;          // 1% drop/dup/reorder/corrupt + reliable
  std::uint64_t fuzz_seed = 0;  // schedule-exploration perturbation
};

class RpcWorld : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] unsigned world() const { return std::get<0>(GetParam()); }
  [[nodiscard]] bool pioman() const { return std::get<1>(GetParam()); }

  [[nodiscard]] ClusterConfig config(const WorldOptions& opt = {}) const {
    ClusterConfig cfg;
    cfg.nodes = world();
    cfg.cpus_per_node = 4;
    cfg.pioman = pioman();
    cfg.rpc = true;
    cfg.fuzz_seed = opt.fuzz_seed;
    if (opt.faults) {
      cfg.faults.defaults.drop = 0.01;
      cfg.faults.defaults.duplicate = 0.01;
      cfg.faults.defaults.reorder = 0.01;
      cfg.faults.defaults.corrupt = 0.01;
      cfg.nm.reliable = true;
    }
    return cfg;
  }

  /// Every-run invariants: every issued request was dispatched exactly
  /// once somewhere, every spawned handler finished, every completion
  /// was satisfied, every signal reached a completion, nothing is left
  /// queued.
  static void check_invariants(Cluster& cluster) {
    std::uint64_t issued = 0, dispatched = 0, sent = 0, delivered = 0;
    for (unsigned n = 0; n < cluster.nodes(); ++n) {
      const Engine::Stats& st = cluster.rpc(n).stats();
      issued += st.issued;
      dispatched += st.dispatched;
      sent += st.signals_sent;
      delivered += st.signals_delivered;
      EXPECT_EQ(st.dispatched, st.handler_spawns) << "node " << n;
      EXPECT_EQ(st.handler_spawns, st.handlers_done) << "node " << n;
      EXPECT_EQ(st.completions_created, st.completions_done) << "node " << n;
      EXPECT_EQ(cluster.rpc(n).queue_depth(), 0u) << "node " << n;
    }
    EXPECT_EQ(issued, dispatched);
    EXPECT_EQ(sent, delivered);
  }
};

// ------------------------------------------------------------ local call

TEST_P(RpcWorld, LocalCallDispatchesAndSignals) {
  Cluster cluster(config());
  std::uint64_t got = 0;
  cluster.rpc(0).register_service(kEcho, [&](Context& ctx) {
    got = ctx.args().u64();
    const CompletionRef done = ctx.args().completion();
    ctx.engine().signal(done);
  });
  cluster.run_on(0, [&] {
    Engine& eng = cluster.rpc(0);
    Completion c(eng);
    eng.call(0, kEcho, [&](ArgWriter& w) {
      w.u64(0xabcdef12345678ull);
      w.completion(c.ref());
    });
    c.wait();
  });
  cluster.run();
  EXPECT_EQ(got, 0xabcdef12345678ull);
  check_invariants(cluster);
}

// --------------------------------------------- remote marshalling round-trip

TEST_P(RpcWorld, RemoteCallRoundTripsTypedArgs) {
  Cluster cluster(config());
  const unsigned server = world() - 1;
  struct Seen {
    std::uint32_t a = 0;
    std::int64_t b = 0;
    double c = 0;
    std::string s;
    std::size_t blob = 0;   // length of the larger payload
    std::size_t empty = 1;  // length of the zero-length payload
    unsigned origin = ~0u;
  } seen;
  cluster.rpc(server).register_service(kEcho, [&](Context& ctx) {
    ArgReader& a = ctx.args();
    seen.a = a.u32();
    seen.b = a.i64();
    seen.c = a.f64();
    seen.s = std::string(a.str());
    seen.empty = a.bytes().size();  // zero-length blob round-trips
    const auto blob = a.bytes();
    seen.blob = blob.size();
    const CompletionRef done = a.completion();
    EXPECT_EQ(a.remaining(), 0u);
    seen.origin = ctx.origin();
    ctx.engine().signal(done);
  });
  cluster.run_on(0, [&] {
    Engine& eng = cluster.rpc(0);
    Completion c(eng);
    std::vector<std::byte> blob(777, std::byte{0x5a});
    eng.call(server, kEcho, [&](ArgWriter& w) {
      w.u32(42);
      w.i64(-7);
      w.f64(2.5);
      w.str("marcel");
      w.bytes({});  // zero-length
      w.bytes(blob);
      w.completion(c.ref());
    });
    c.wait();
  });
  if (!pioman() && server != 0) {
    cluster.run_on(server, [&] { cluster.rpc(server).serve_until_handlers_done(1); },
                   "server");
  }
  cluster.run();
  EXPECT_EQ(seen.a, 42u);
  EXPECT_EQ(seen.b, -7);
  EXPECT_EQ(seen.c, 2.5);
  EXPECT_EQ(seen.s, "marcel");
  EXPECT_EQ(seen.empty, 0u);
  EXPECT_EQ(seen.blob, 777u);
  EXPECT_EQ(seen.origin, 0u);
  check_invariants(cluster);
}

// ------------------------------------------------- rendezvous-sized args

TEST_P(RpcWorld, LargeArgsTravelByRendezvous) {
  Cluster cluster(config());
  const unsigned server = world() - 1;
  const std::size_t kBig = 48 * 1024;  // above the 32 KiB rdv threshold
  std::uint64_t got_sum = 0;
  cluster.rpc(server).register_service(kEcho, [&](Context& ctx) {
    const auto blob = ctx.args().bytes();
    EXPECT_EQ(blob.size(), kBig);
    std::uint64_t sum = 0;
    for (const std::byte b : blob) sum += static_cast<std::uint64_t>(b);
    got_sum = sum;
    ctx.engine().signal(ctx.args().completion());
  });
  std::uint64_t want_sum = 0;
  cluster.run_on(0, [&] {
    Engine& eng = cluster.rpc(0);
    Completion c(eng);
    std::vector<std::byte> blob(kBig);
    for (std::size_t i = 0; i < blob.size(); ++i) {
      blob[i] = static_cast<std::byte>(i * 31 + 7);
      want_sum += static_cast<std::uint64_t>(blob[i]);
    }
    eng.call(server, kEcho, [&](ArgWriter& w) {
      w.bytes(blob);
      w.completion(c.ref());
    });
    c.wait();
  });
  if (!pioman() && server != 0) {
    cluster.run_on(server, [&] { cluster.rpc(server).serve_until_handlers_done(1); },
                   "server");
  }
  cluster.run();
  EXPECT_EQ(got_sum, want_sum);
  const auto& st = cluster.comm(0).stats();
  EXPECT_GE(st.rdv_sends, 1u) << "big args should use the rendezvous path";
  check_invariants(cluster);
}

// -------------------------------------------------- forwarded completion

TEST_P(RpcWorld, CompletionForwardsThroughIntermediateNode) {
  // 0 calls A with a ref; A's handler does not signal — it forwards the
  // ref in a second RPC to B, whose handler signals.  The waiter on 0
  // must wake from a signal two hops removed from anything it sent.
  Cluster cluster(config());
  const unsigned a = 1 % world();
  const unsigned b = world() >= 3 ? 2 : 0;
  std::vector<unsigned> touched;
  cluster.rpc(a).register_service(kForward, [&, b](Context& ctx) {
    const CompletionRef done = ctx.args().completion();
    touched.push_back(ctx.engine().node_id());
    ctx.engine().call(b, kTouch, [&](ArgWriter& w) { w.completion(done); });
  });
  cluster.rpc(b).register_service(kTouch, [&](Context& ctx) {
    touched.push_back(ctx.engine().node_id());
    ctx.engine().signal(ctx.args().completion());
  });
  cluster.run_on(0, [&] {
    Engine& eng = cluster.rpc(0);
    Completion c(eng);
    eng.call(a, kForward, [&](ArgWriter& w) { w.completion(c.ref()); });
    c.wait();
  });
  if (!pioman()) {
    if (a != 0) {
      cluster.run_on(a, [&] { cluster.rpc(a).serve_until_handlers_done(1); },
                     "serverA");
    }
    if (b != 0 && b != a) {
      cluster.run_on(b, [&] { cluster.rpc(b).serve_until_handlers_done(1); },
                     "serverB");
    }
  }
  cluster.run();
  ASSERT_EQ(touched.size(), 2u);
  EXPECT_EQ(touched[0], a);
  EXPECT_EQ(touched[1], b);
  check_invariants(cluster);
}

// ---------------------------------------------------- counted completion

TEST_P(RpcWorld, CountedCompletionFansOut) {
  // One waiter, 2 * world workers: every node is called twice with the
  // same forwarded ref and signals it once (the exemplar's fan-out).
  Cluster cluster(config());
  const std::uint32_t fan = 2 * world();
  for (unsigned n = 0; n < world(); ++n) {
    cluster.rpc(n).register_service(kTouch, [&, n](Context& ctx) {
      marcel::this_thread::compute((1 + n % 3) * kUs);
      ctx.engine().signal(ctx.args().completion());
    });
  }
  cluster.run_on(0, [&] {
    Engine& eng = cluster.rpc(0);
    Completion c(eng, fan);
    for (std::uint32_t i = 0; i < fan; ++i) {
      eng.call(i % world(), kTouch,
               [&](ArgWriter& w) { w.completion(c.ref()); });
    }
    c.wait();
    EXPECT_TRUE(c.done());
    EXPECT_GT(c.done_at(), 0);
  });
  if (!pioman()) {
    for (unsigned n = 1; n < world(); ++n) {
      cluster.run_on(n, [&, n] { cluster.rpc(n).serve_until_handlers_done(2); },
                     "server");
    }
  }
  cluster.run();
  check_invariants(cluster);
}

// ------------------------------------------- concurrent outstanding RPCs

TEST_P(RpcWorld, ManyConcurrentOutstandingCalls) {
  // Every rank issues a burst of calls round-robin across the world
  // before waiting on any of them; handlers compute, so dispatches from
  // different origins interleave on the target nodes.
  constexpr unsigned kPerRank = 8;
  Cluster cluster(config());
  std::vector<std::uint64_t> sums(world(), 0);
  for (unsigned n = 0; n < world(); ++n) {
    cluster.rpc(n).register_service(kEcho, [&, n](Context& ctx) {
      const std::uint64_t x = ctx.args().u64();
      marcel::this_thread::compute(2 * kUs);
      sums[n] += x;
      ctx.engine().signal(ctx.args().completion());
    });
  }
  const std::uint64_t each = kPerRank * (kPerRank + 1) / 2;
  for (unsigned r = 0; r < world(); ++r) {
    cluster.run_on(r, [&, r] {
      Engine& eng = cluster.rpc(r);
      std::vector<std::unique_ptr<Completion>> pending;
      for (unsigned i = 1; i <= kPerRank; ++i) {
        auto c = std::make_unique<Completion>(eng);
        eng.call((r + i) % world(), kEcho, [&, i](ArgWriter& w) {
          w.u64(i);
          w.completion(c->ref());
        });
        pending.push_back(std::move(c));
      }
      for (auto& c : pending) c->wait();
      if (!pioman()) {
        // Each rank receives kPerRank requests in total; its own wait
        // loops dispatch some, but a rank whose callers finish late must
        // keep serving after its waits are over.
        eng.serve_until_handlers_done(kPerRank);
      }
    });
  }
  cluster.run();
  for (unsigned n = 0; n < world(); ++n) {
    EXPECT_EQ(sums[n], each) << "node " << n;
  }
  check_invariants(cluster);
}

// --------------------------------------------------------------- metrics

TEST_P(RpcWorld, MetricsStayConsistent) {
  Cluster cluster(config());
  for (unsigned n = 0; n < world(); ++n) {
    cluster.rpc(n).register_service(kTouch, [](Context& ctx) {
      ctx.engine().signal(ctx.args().completion());
    });
  }
  constexpr unsigned kCalls = 5;
  for (unsigned r = 0; r < world(); ++r) {
    cluster.run_on(r, [&, r] {
      Engine& eng = cluster.rpc(r);
      for (unsigned i = 0; i < kCalls; ++i) {
        Completion c(eng);
        eng.call((r + 1) % world(), kTouch,
                 [&](ArgWriter& w) { w.completion(c.ref()); });
        c.wait();
      }
      if (!pioman()) eng.serve_until_handlers_done(kCalls);
    });
  }
  cluster.run();
  for (unsigned n = 0; n < world(); ++n) {
    const Engine::Stats& st = cluster.rpc(n).stats();
    EXPECT_EQ(st.issued, kCalls);
    EXPECT_EQ(st.dispatched, kCalls);
    EXPECT_EQ(st.completions_created, kCalls);
    EXPECT_EQ(st.completions_done, kCalls);
  }
  // The bound histograms fill in when a registry is attached.
  MetricsRegistry& reg = cluster.metrics();
  const Log2Histogram* h = reg.find_histogram("node0/rpc/handler_ns");
  ASSERT_NE(h, nullptr);
  // Binding happened at cluster construction, before any traffic, so
  // every handler execution on node 0 is accounted.
  EXPECT_EQ(h->total(), cluster.rpc(0).stats().handlers_done);
  check_invariants(cluster);
}

// ------------------------------------------------------ tag-band fencing

TEST(RpcTagBand, CollBandStopsBelowRpcBand) {
  EXPECT_LT(nm::Core::kCollTagBase, nm::Core::kRpcTagBase);
  EXPECT_GE(Engine::kReqTag, nm::Core::kRpcTagBase);
  EXPECT_GE(Engine::kSigTag, nm::Core::kRpcTagBase);
  EXPECT_NE(Engine::kReqTag, Engine::kSigTag);
}

// ------------------------------------------------------------- fuzz soak

std::string soak_one(std::uint64_t seed) {
  // 3-node lossy world, both progression modes exercised by alternating
  // seeds; every rank both calls and serves.  Returns "" on success, a
  // diagnostic otherwise (EXPECT inside would abort the whole sweep).
  const bool pioman = (seed % 2) == 0;
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.cpus_per_node = 4;
  cfg.pioman = pioman;
  cfg.rpc = true;
  cfg.fuzz_seed = seed;
  cfg.nm.fault_seed = seed * 77 + 1;
  cfg.faults.defaults.drop = 0.01;
  cfg.faults.defaults.duplicate = 0.01;
  cfg.faults.defaults.reorder = 0.01;
  cfg.faults.defaults.corrupt = 0.01;
  cfg.nm.reliable = true;

  constexpr unsigned kPerRank = 4;
  Cluster cluster(cfg);
  std::vector<std::uint64_t> sums(cfg.nodes, 0);
  for (unsigned n = 0; n < cfg.nodes; ++n) {
    cluster.rpc(n).register_service(kEcho, [&sums, n](Context& ctx) {
      sums[n] += ctx.args().u64();
      ctx.engine().signal(ctx.args().completion());
    });
  }
  for (unsigned r = 0; r < cfg.nodes; ++r) {
    cluster.run_on(r, [&cluster, r, pioman] {
      Engine& eng = cluster.rpc(r);
      std::vector<std::unique_ptr<Completion>> pending;
      for (unsigned i = 1; i <= kPerRank; ++i) {
        auto c = std::make_unique<Completion>(eng);
        eng.call((r + i) % 3, kEcho, [&, i](ArgWriter& w) {
          w.u64(i * 1000 + r);
          w.completion(c->ref());
        });
        pending.push_back(std::move(c));
      }
      for (auto& c : pending) c->wait();
      if (!pioman) eng.serve_until_handlers_done(kPerRank);
    });
  }
  cluster.run();

  std::uint64_t want = 0, got = 0;
  for (unsigned r = 0; r < cfg.nodes; ++r) {
    for (unsigned i = 1; i <= kPerRank; ++i) want += i * 1000 + r;
    got += sums[r];
  }
  char diag[128];
  if (got != want) {
    std::snprintf(diag, sizeof diag,
                  "seed %llu: handler sums %llu != %llu",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want));
    return diag;
  }
  std::uint64_t issued = 0, dispatched = 0;
  for (unsigned n = 0; n < cfg.nodes; ++n) {
    issued += cluster.rpc(n).stats().issued;
    dispatched += cluster.rpc(n).stats().dispatched;
  }
  if (issued != dispatched) {
    std::snprintf(diag, sizeof diag,
                  "seed %llu: issued %llu != dispatched %llu",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(issued),
                  static_cast<unsigned long long>(dispatched));
    return diag;
  }
  return "";
}

TEST(RpcFuzzSoak, CorrectAcrossSeedsOnLossyFabric) {
  // >= 100 seeds by default (the acceptance bar); PM2_FUZZ_SOAK_SEEDS
  // deepens the sweep in CI.  Seed 0 means "fuzzer off", so start at 1.
  std::uint64_t seeds = 100;
  if (const char* env = std::getenv("PM2_FUZZ_SOAK_SEEDS"); env != nullptr) {
    seeds = std::strtoull(env, nullptr, 0);
  }
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const std::string diag = soak_one(seed);
    ASSERT_TRUE(diag.empty()) << diag;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, RpcWorld,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 8u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) +
             (std::get<1>(pinfo.param) ? "_Pioman" : "_AppDriven");
    });

}  // namespace
}  // namespace pm2::rpc
