// Causal-tracing subsystem (pm2/tracing): namespaced flow ids, the event
// kind tables, end-to-end trace assembly over real clusters — local calls,
// a 3-hop forwarded-completion chain, collective schedule DAGs — the
// critical path's exact e2e reconstruction, same-fuzz-seed determinism,
// and the zero-virtual-time guarantee (traced and untraced runs finish at
// the identical simulated instant).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "pm2/cluster.hpp"
#include "pm2/completion.hpp"
#include "pm2/rpc.hpp"
#include "pm2/tracing/assembly.hpp"
#include "pm2/tracing/tracing.hpp"
#include "sim/flow_id.hpp"

namespace pm2 {
namespace {

using rpc::Completion;
using rpc::CompletionRef;

constexpr std::uint32_t kTouch = 1;  // signals the completion
constexpr std::uint32_t kHop = 2;    // forwards the completion N more hops

ClusterConfig traced_config(unsigned nodes, bool pioman,
                            std::uint64_t fuzz_seed = 0) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.cpus_per_node = 4;
  cfg.pioman = pioman;
  cfg.rpc = true;
  cfg.tracing = true;
  cfg.fuzz_seed = fuzz_seed;
  return cfg;
}

std::vector<const tracing::Recorder*> recorders(Cluster& cluster) {
  std::vector<const tracing::Recorder*> out;
  for (unsigned n = 0; n < cluster.nodes(); ++n) {
    out.push_back(cluster.trace_recorder(n));
  }
  return out;
}

/// Structural invariants every assembled trace must satisfy: unique span
/// ids, parents resolving within the trace, a single root, every span
/// closed when the trace claims completeness.
void check_tree(const tracing::TraceView& t) {
  std::vector<std::uint64_t> ids;
  unsigned roots = 0;
  for (const tracing::SpanView& s : t.spans) {
    for (const std::uint64_t id : ids) EXPECT_NE(id, s.id) << "dup span";
    ids.push_back(s.id);
    if (s.parent == 0) {
      ++roots;
    } else {
      bool found = false;
      for (const tracing::SpanView& p : t.spans) found |= p.id == s.parent;
      EXPECT_TRUE(found) << "span " << s.id << " parent " << s.parent
                         << " not in trace " << t.id;
    }
    if (t.complete) {
      EXPECT_TRUE(s.closed) << "span " << s.id;
    }
    EXPECT_LE(s.begin, s.end) << "span " << s.id;
  }
  EXPECT_EQ(roots, 1u) << "trace " << t.id;
}

/// The telescoping-chain property: contiguous segments covering exactly
/// [begin, end], so their durations sum to e2e with zero error.
void check_critical_path(const tracing::TraceView& t) {
  ASSERT_FALSE(t.critical_path.empty()) << "trace " << t.id;
  EXPECT_EQ(t.critical_path.front().from, t.begin);
  EXPECT_EQ(t.critical_path.back().to, t.end);
  SimDuration sum = 0;
  for (std::size_t i = 0; i < t.critical_path.size(); ++i) {
    const tracing::Segment& seg = t.critical_path[i];
    EXPECT_LE(seg.from, seg.to) << "segment " << seg.name;
    if (i + 1 < t.critical_path.size()) {
      EXPECT_EQ(seg.to, t.critical_path[i + 1].from) << "gap after "
                                                     << seg.name;
    }
    sum += seg.ns();
  }
  EXPECT_EQ(sum, t.e2e_ns()) << "trace " << t.id;
}

// --------------------------------------------------- flow-id namespacing

TEST(FlowId, ClassLivesInTheTopByteAndLowBitsAreMasked) {
  using sim::FlowClass;
  const std::uint64_t id = sim::flow_id(FlowClass::kRpc, 0x1234ull);
  EXPECT_TRUE(sim::flow_class(id) == FlowClass::kRpc);
  EXPECT_EQ(id & sim::kFlowLowMask, 0x1234ull);
  // A low value wider than 56 bits must not bleed into the class byte.
  const std::uint64_t wide = sim::flow_id(FlowClass::kWire, ~0ull);
  EXPECT_TRUE(sim::flow_class(wide) == FlowClass::kWire);
  // The same low value in different classes gives different flow ids.
  EXPECT_NE(sim::flow_id(FlowClass::kWire, 7),
            sim::flow_id(FlowClass::kOffload, 7));
  EXPECT_NE(sim::flow_id(FlowClass::kOffload, 7),
            sim::flow_id(FlowClass::kTrace, 7));
}

// ------------------------------------------------------ kind-table sanity

TEST(EventKinds, ClosingKindsMatchOpeningKinds) {
  using tracing::EventKind;
  EXPECT_EQ(tracing::closing_kind_for(EventKind::kCallIssued),
            EventKind::kSendDone);
  EXPECT_EQ(tracing::closing_kind_for(EventKind::kWireRx),
            EventKind::kHandlerEnd);
  EXPECT_EQ(tracing::closing_kind_for(EventKind::kSignalSent),
            EventKind::kSignalDelivered);
  EXPECT_EQ(tracing::closing_kind_for(EventKind::kCollStart),
            EventKind::kCollDone);
  EXPECT_EQ(tracing::closing_kind_for(EventKind::kCollOpIssued),
            EventKind::kCollOpDone);
  EXPECT_EQ(tracing::closing_kind_for(EventKind::kRmaEpochStart),
            EventKind::kRmaEpochEnd);
  EXPECT_EQ(tracing::closing_kind_for(EventKind::kRmaOpIssued),
            EventKind::kRmaOpDone);
  for (std::size_t i = 0; i < tracing::kEventKindCount; ++i) {
    const auto k = static_cast<EventKind>(i);
    EXPECT_FALSE(tracing::opens_span(k) && tracing::closes_span(k));
    if (tracing::opens_span(k)) {
      EXPECT_TRUE(tracing::closes_span(tracing::closing_kind_for(k)));
      EXPECT_STRNE(tracing::span_kind_name(k), "");
    }
    EXPECT_STRNE(tracing::event_kind_name(k), "");
  }
}

// ------------------------------------------------------------ local call

using Param = bool;  // pioman

class TracedWorld : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] bool pioman() const { return GetParam(); }
};

TEST_P(TracedWorld, LocalCallAssemblesOneCompleteTrace) {
  Cluster cluster(traced_config(2, pioman()));
  cluster.rpc(0).register_service(kTouch, [&](rpc::Context& ctx) {
    ctx.engine().signal(ctx.args().completion());
  });
  cluster.run_on(0, [&] {
    rpc::Engine& eng = cluster.rpc(0);
    Completion c(eng);
    eng.call(0, kTouch, [&](rpc::ArgWriter& w) { w.completion(c.ref()); });
    c.wait();
  });
  cluster.run();

  const auto recs = recorders(cluster);
  const tracing::Assembly a = tracing::assemble(recs);
  ASSERT_EQ(a.traces.size(), 1u);
  EXPECT_EQ(a.open_spans, 0u);
  const tracing::TraceView& t = a.traces[0];
  EXPECT_STREQ(t.kind, "rpc");
  EXPECT_TRUE(t.complete);
  ASSERT_EQ(t.spans.size(), 3u);  // rpc.call + rpc.server + rpc.signal
  check_tree(t);
  check_critical_path(t);
}

// --------------------------------------- 3-hop forwarded completion chain

TEST_P(TracedWorld, ThreeHopForwardedCompletionIsOneTraceTree) {
  // 0 calls 1, whose handler forwards the completion ref to 2, whose
  // handler forwards to 3, whose handler signals: one trace spanning all
  // four nodes, with each hop's spans parented into a single tree.
  Cluster cluster(traced_config(4, pioman()));
  for (unsigned n = 1; n < cluster.nodes(); ++n) {
    cluster.rpc(n).register_service(kHop, [&, n](rpc::Context& ctx) {
      const std::uint32_t hops = ctx.args().u32();
      const CompletionRef done = ctx.args().completion();
      rpc::Engine& eng = ctx.engine();
      if (hops == 0) {
        eng.signal(done);
        return;
      }
      eng.call(n + 1, kHop, [&](rpc::ArgWriter& w) {
        w.u32(hops - 1);
        w.completion(done);
      });
    });
  }
  cluster.run_on(0, [&] {
    rpc::Engine& eng = cluster.rpc(0);
    Completion c(eng);
    eng.call(1, kHop, [&](rpc::ArgWriter& w) {
      w.u32(2);
      w.completion(c.ref());
    });
    c.wait();
    EXPECT_TRUE(c.done());
  });
  if (!pioman()) {
    for (unsigned n = 1; n < cluster.nodes(); ++n) {
      cluster.run_on(n,
                     [&, n] { cluster.rpc(n).serve_until_handlers_done(1); },
                     "server");
    }
  }
  cluster.run();

  const auto recs = recorders(cluster);
  const tracing::Assembly a = tracing::assemble(recs);
  ASSERT_EQ(a.traces.size(), 1u);
  EXPECT_EQ(a.open_spans, 0u);
  const tracing::TraceView& t = a.traces[0];
  EXPECT_TRUE(t.complete);
  EXPECT_EQ(t.root_node, 0u);
  // 3 x rpc.call + 3 x rpc.server + 1 x rpc.signal.
  ASSERT_EQ(t.spans.size(), 7u);
  unsigned calls = 0, servers = 0, signals = 0;
  std::vector<unsigned> nodes_seen;
  for (const tracing::SpanView& s : t.spans) {
    switch (s.open_kind) {
      case tracing::EventKind::kCallIssued: ++calls; break;
      case tracing::EventKind::kWireRx: ++servers; break;
      case tracing::EventKind::kSignalSent: ++signals; break;
      default: ADD_FAILURE() << "unexpected span kind"; break;
    }
    nodes_seen.push_back(s.node);
  }
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(servers, 3u);
  EXPECT_EQ(signals, 1u);
  for (unsigned n = 0; n < 4; ++n) {
    EXPECT_NE(std::count(nodes_seen.begin(), nodes_seen.end(), n), 0)
        << "no span opened on node " << n;
  }
  check_tree(t);
  check_critical_path(t);

  // The recorders' own accounting agrees: every opened span closed.
  std::uint64_t opened = 0, closed = 0;
  for (const tracing::Recorder* r : recs) {
    opened += r->counters().spans_opened;
    closed += r->counters().spans_closed;
  }
  EXPECT_EQ(opened, closed);
  EXPECT_EQ(opened, 7u);
}

// --------------------------------------------------- collective DAG trace

TEST_P(TracedWorld, CollectiveDagOpsParentToTheirRankRoot) {
  Cluster cluster(traced_config(4, pioman()));
  std::vector<std::vector<double>> data(4);
  for (unsigned r = 0; r < 4; ++r) {
    data[r].assign(64, static_cast<double>(r + 1));
    cluster.run_on(r, [&, r] {
      nm::coll::CollRequest* req = cluster.coll(r).iallreduce_sum(data[r]);
      cluster.coll(r).wait(req);
    });
  }
  cluster.run();
  for (unsigned r = 0; r < 4; ++r) EXPECT_EQ(data[r][0], 10.0);

  const auto recs = recorders(cluster);
  const tracing::Assembly a = tracing::assemble(recs);
  EXPECT_EQ(a.open_spans, 0u);
  ASSERT_EQ(a.traces.size(), 4u);  // one schedule-DAG trace per rank
  for (const tracing::TraceView& t : a.traces) {
    EXPECT_STREQ(t.kind, "coll");
    EXPECT_TRUE(t.complete);
    check_tree(t);
    ASSERT_GE(t.spans.size(), 2u);
    const tracing::SpanView& root = t.spans[0];
    EXPECT_EQ(root.open_kind, tracing::EventKind::kCollStart);
    EXPECT_EQ(root.parent, 0u);
    for (std::size_t i = 1; i < t.spans.size(); ++i) {
      EXPECT_EQ(t.spans[i].open_kind, tracing::EventKind::kCollOpIssued);
      EXPECT_EQ(t.spans[i].parent, root.id) << "DAG op not parented to the "
                                               "rank's coll root";
      EXPECT_TRUE(t.spans[i].closed);
    }
  }
}

// -------------------------------------------- same-fuzz-seed determinism

TEST_P(TracedWorld, SameFuzzSeedYieldsIdenticalEventStreams) {
  using Tuple = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, int,
                           std::uint32_t, unsigned, SimTime>;
  const auto run_once = [&]() {
    Cluster cluster(traced_config(3, pioman(), /*fuzz_seed=*/42));
    for (unsigned n = 0; n < 3; ++n) {
      cluster.rpc(n).register_service(kTouch, [](rpc::Context& ctx) {
        ctx.engine().signal(ctx.args().completion());
      });
    }
    for (unsigned n = 0; n < 3; ++n) {
      cluster.run_on(n, [&, n] {
        rpc::Engine& eng = cluster.rpc(n);
        for (int i = 0; i < 4; ++i) {
          Completion c(eng);
          eng.call((n + 1) % 3, kTouch,
                   [&](rpc::ArgWriter& w) { w.completion(c.ref()); });
          c.wait();
        }
        if (!pioman()) eng.serve_until_handlers_done(4);
      });
    }
    cluster.run();
    std::vector<Tuple> out;
    for (unsigned n = 0; n < 3; ++n) {
      for (const tracing::Event& e : cluster.trace_recorder(n)->events()) {
        out.emplace_back(e.trace_id, e.span_id, e.parent_span_id,
                         static_cast<int>(e.kind), e.service, e.node, e.at);
      }
    }
    return out;
  };
  const std::vector<Tuple> first = run_once();
  const std::vector<Tuple> second = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ------------------------------------------------- zero virtual-time cost

TEST_P(TracedWorld, TracingChargesNoVirtualTime) {
  const auto finish_time = [&](bool traced) {
    ClusterConfig cfg = traced_config(2, pioman());
    cfg.tracing = traced;
    Cluster cluster(cfg);
    cluster.rpc(1).register_service(kTouch, [](rpc::Context& ctx) {
      ctx.engine().signal(ctx.args().completion());
    });
    cluster.run_on(0, [&] {
      rpc::Engine& eng = cluster.rpc(0);
      for (int i = 0; i < 8; ++i) {
        Completion c(eng);
        eng.call(1, kTouch,
                 [&](rpc::ArgWriter& w) { w.completion(c.ref()); });
        c.wait();
      }
    });
    if (!pioman()) {
      cluster.run_on(1,
                     [&] { cluster.rpc(1).serve_until_handlers_done(8); },
                     "server");
    }
    cluster.run();
    return cluster.now();
  };
  const SimTime untraced = finish_time(false);
  const SimTime traced = finish_time(true);
  EXPECT_EQ(untraced, traced)
      << "tracing must not perturb the simulated schedule";
}

INSTANTIATE_TEST_SUITE_P(Modes, TracedWorld, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<Param>& pinfo) {
                           return pinfo.param ? "Pioman" : "AppDriven";
                         });

}  // namespace
}  // namespace pm2
