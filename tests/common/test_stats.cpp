#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace pm2 {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);  // sample variance of {1,2,3}
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = i * 0.37;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, AddAfterPercentileResorts) {
  Samples s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Log2Histogram, BucketsAndRender) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1000);
  EXPECT_EQ(h.total(), 5u);
  const std::string text = h.render();
  EXPECT_NE(text.find(": 2"), std::string::npos);  // values 2 and 3 share a bucket
}

TEST(Log2Histogram, MergeAddsPerBucket) {
  Log2Histogram a, b, both;
  for (std::uint64_t v : {1ull, 5ull, 100ull}) {
    a.add(v);
    both.add(v);
  }
  for (std::uint64_t v : {5ull, 5000ull}) {
    b.add(v);
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), both.total());
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), both.bucket_count(i)) << "bucket " << i;
  }
}

TEST(Log2Histogram, MergeOfEmptyIsIdentity) {
  Log2Histogram a, empty;
  for (std::uint64_t v : {1ull, 5ull, 100ull}) a.add(v);
  const double p50_before = a.percentile(50);
  a.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.total(), 3u);
  EXPECT_DOUBLE_EQ(a.percentile(50), p50_before);

  Log2Histogram b;
  b.merge(a);  // merging into an empty histogram copies it
  EXPECT_EQ(b.total(), a.total());
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(b.bucket_count(i), a.bucket_count(i)) << "bucket " << i;
  }

  Log2Histogram c, d;
  c.merge(d);  // empty + empty stays empty, percentile stays 0
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.percentile(99), 0.0);
}

TEST(Log2Histogram, PercentileBounds) {
  Log2Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.add(1000);  // all in one bucket
  // Every sample lies in [512, 1023]; the estimate must too.
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1023.0);
  EXPECT_LE(h.percentile(1), h.percentile(99));
}

TEST(Log2Histogram, PercentileOrderingAcrossBuckets) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(100);     // bucket [64, 127]
  for (int i = 0; i < 10; ++i) h.add(100000);  // far-out tail
  const double p50 = h.percentile(50);
  const double p99 = h.percentile(99);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 127.0);
  EXPECT_GT(p99, 1000.0);  // the tail dominates the 99th
  EXPECT_LE(p99, 131071.0);
}

}  // namespace
}  // namespace pm2
