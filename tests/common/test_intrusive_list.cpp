#include <gtest/gtest.h>

#include <vector>

#include "common/intrusive_list.hpp"

namespace pm2 {
namespace {

struct Node {
  explicit Node(int v) : value(v) {}
  int value;
  ListHook hook;
  ListHook other_hook;
};

using List = IntrusiveList<Node, &Node::hook>;
using OtherList = IntrusiveList<Node, &Node::other_hook>;

TEST(IntrusiveList, EmptyBehaviour) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.pop_front(), nullptr);
  EXPECT_EQ(list.pop_back(), nullptr);
}

TEST(IntrusiveList, PushPopFifo) {
  List list;
  Node a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.pop_front()->value, 1);
  EXPECT_EQ(list.pop_front()->value, 2);
  EXPECT_EQ(list.pop_front()->value, 3);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PushFrontPopBack) {
  List list;
  Node a(1), b(2);
  list.push_front(a);
  list.push_front(b);  // order: b, a
  EXPECT_EQ(list.front().value, 2);
  EXPECT_EQ(list.back().value, 1);
  EXPECT_EQ(list.pop_back()->value, 1);
  EXPECT_EQ(list.pop_back()->value, 2);
}

TEST(IntrusiveList, EraseMiddle) {
  List list;
  Node a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(b.hook.is_linked());
  EXPECT_EQ(list.pop_front()->value, 1);
  EXPECT_EQ(list.pop_front()->value, 3);
}

TEST(IntrusiveList, Iteration) {
  List list;
  Node a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  std::vector<int> seen;
  for (Node& n : list) seen.push_back(n.value);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveList, MembershipInTwoLists) {
  List list;
  OtherList other;
  Node a(1);
  list.push_back(a);
  other.push_back(a);
  EXPECT_TRUE(list.contains(a));
  EXPECT_TRUE(other.contains(a));
  list.erase(a);
  EXPECT_FALSE(a.hook.is_linked());
  EXPECT_TRUE(a.other_hook.is_linked());
}

TEST(IntrusiveList, DoubleInsertAsserts) {
  List list;
  Node a(1);
  list.push_back(a);
  EXPECT_DEATH(list.push_back(a), "already on a list");
}

TEST(IntrusiveList, Clear) {
  List list;
  Node a(1), b(2);
  list.push_back(a);
  list.push_back(b);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(a.hook.is_linked());
  EXPECT_FALSE(b.hook.is_linked());
}

}  // namespace
}  // namespace pm2
