// Bounded MPMC ring: capacity behaviour, FIFO single-threaded, and
// conservation under real multi-thread producers/consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/mpmc_ring.hpp"

namespace pm2 {
namespace {

TEST(MpmcRing, SingleThreadFifo) {
  MpmcRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "ring should be full";
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpmcRing, WrapsAround) {
  MpmcRing<int> ring(4);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(round * 10 + i));
    for (int i = 0; i < 3; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, round * 10 + i);
    }
  }
}

TEST(MpmcRing, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(MpmcRing<int>(3), "power of two");
}

TEST(MpmcRing, ReleasesPayloadPromptlyOnPop) {
  // Regression: try_pop used to leave the moved-from slot holding whatever
  // the move constructor left behind (for shared_ptr-like payloads, a live
  // reference), keeping the resource alive until the slot was overwritten
  // up to a full ring-capacity later.
  MpmcRing<std::shared_ptr<int>> ring(8);
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> watch = payload;
  ASSERT_TRUE(ring.try_push(std::move(payload)));
  {
    auto popped = ring.try_pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(**popped, 42);
  }
  // The slot has not been reused — the pop alone must have dropped the
  // ring's reference.
  EXPECT_TRUE(watch.expired())
      << "slot retains the payload until overwritten";
}

TEST(MpmcRing, ReleasesEveryPayloadAcrossWrap) {
  MpmcRing<std::shared_ptr<int>> ring(4);
  std::vector<std::weak_ptr<int>> watches;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      auto p = std::make_shared<int>(round * 10 + i);
      watches.push_back(p);
      ASSERT_TRUE(ring.try_push(std::move(p)));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop().has_value());
    }
    for (const auto& w : watches) {
      EXPECT_TRUE(w.expired()) << "round " << round;
    }
  }
}

TEST(MpmcRing, MultiThreadConservation) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 50'000;
  MpmcRing<int> ring(1024);
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        auto v = ring.try_pop();
        if (v.has_value()) {
          consumed_sum.fetch_add(*v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire)) {
          if (!ring.try_pop().has_value()) break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const long long n = static_cast<long long>(kProducers) * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace pm2
