// MPSC queue: FIFO per producer, no losses, no duplicates, real threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"

namespace pm2 {
namespace {

struct Item {
  MpscHook hook;
  int producer = -1;
  int seq = -1;
};

using Queue = MpscQueue<Item, &Item::hook>;

TEST(MpscQueue, EmptyPopsNull) {
  Queue q;
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.empty_hint());
}

TEST(MpscQueue, SingleThreadFifo) {
  Queue q;
  std::vector<Item> items(100);
  for (int i = 0; i < 100; ++i) {
    items[i].seq = i;
    q.push(items[i]);
  }
  EXPECT_FALSE(q.empty_hint());
  for (int i = 0; i < 100; ++i) {
    Item* it = q.pop();
    ASSERT_NE(it, nullptr);
    EXPECT_EQ(it->seq, i);
  }
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueue, InterleavedPushPop) {
  Queue q;
  std::vector<Item> items(10);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      items[round * 3 + i].seq = round * 3 + i;
      q.push(items[round * 3 + i]);
    }
    for (int i = 0; i < 3; ++i) {
      Item* it = q.pop();
      ASSERT_NE(it, nullptr);
      EXPECT_EQ(it->seq, round * 3 + i);
    }
  }
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueue, MultiProducerNoLossNoDup) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10'000;
  Queue q;
  std::vector<std::vector<Item>> items(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    items[p].resize(kPerProducer);
    for (int i = 0; i < kPerProducer; ++i) {
      items[p][i].producer = p;
      items[p][i].seq = i;
    }
  }
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(items[p][i]);
    });
  }
  // Consumer: verify per-producer FIFO and total count.
  int received = 0;
  std::vector<int> last_seq(kProducers, -1);
  std::thread consumer([&] {
    while (received < kProducers * kPerProducer) {
      Item* it = q.pop();
      if (it == nullptr) {
        if (done.load(std::memory_order_acquire) &&
            received == kProducers * kPerProducer) {
          break;
        }
        std::this_thread::yield();
        continue;
      }
      ASSERT_GT(it->seq, last_seq[it->producer]);
      last_seq[it->producer] = it->seq;
      ++received;
    }
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seq[p], kPerProducer - 1);
  }
}

}  // namespace
}  // namespace pm2
