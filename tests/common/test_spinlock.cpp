// Spinlock / ticket-lock correctness under real host-thread contention.
#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "common/spinlock.hpp"

namespace pm2 {
namespace {

TEST(Spinlock, BasicLockUnlock) {
  Spinlock lock;
  EXPECT_FALSE(lock.is_locked());
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, GuardCompatible) {
  Spinlock lock;
  {
    std::lock_guard<Spinlock> guard(lock);
    EXPECT_TRUE(lock.is_locked());
  }
  EXPECT_FALSE(lock.is_locked());
}

template <typename Lock>
void contention_test() {
  Lock lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 20'000;
  std::int64_t counter = 0;  // protected by lock
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<Lock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(Spinlock, ContendedIncrements) { contention_test<Spinlock>(); }

TEST(TicketLock, ContendedIncrements) { contention_test<TicketLock>(); }

TEST(TicketLock, TryLockWhenHeld) {
  TicketLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace pm2
