#include <gtest/gtest.h>

#include "common/backoff.hpp"
#include "common/cacheline.hpp"

namespace pm2 {
namespace {

TEST(Backoff, EscalatesToYielding) {
  Backoff b;
  EXPECT_FALSE(b.is_yielding());
  for (int i = 0; i < 10; ++i) b.pause();
  EXPECT_TRUE(b.is_yielding());
  b.reset();
  EXPECT_FALSE(b.is_yielding());
}

TEST(CacheAligned, AlignsToCacheLine) {
  CacheAligned<int> a;
  CacheAligned<int> b;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&a) % kCacheLineSize, 0u);
  EXPECT_GE(sizeof(CacheAligned<char>), kCacheLineSize);
  *a = 42;
  EXPECT_EQ(a.value, 42);
  b.value = 7;
  EXPECT_EQ(*b, 7);
}

TEST(CacheAligned, ArrayElementsDoNotShare) {
  CacheAligned<int> arr[2];
  const auto a0 = reinterpret_cast<std::uintptr_t>(&arr[0]);
  const auto a1 = reinterpret_cast<std::uintptr_t>(&arr[1]);
  EXPECT_GE(a1 - a0, kCacheLineSize);
}

}  // namespace
}  // namespace pm2
