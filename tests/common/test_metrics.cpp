// MetricsRegistry: registration semantics, name uniqueness, aggregation,
// and JSON export.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"

namespace pm2 {
namespace {

TEST(Metrics, OwnedCounterSharesStorageByName) {
  MetricsRegistry reg;
  std::uint64_t& a = reg.counter("x/hits");
  a = 3;
  std::uint64_t& b = reg.counter("x/hits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.value("x/hits"), 3.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, BoundCounterReadsThrough) {
  MetricsRegistry reg;
  std::uint64_t source = 0;
  reg.bind_counter("sub/ops", &source);
  EXPECT_EQ(reg.value("sub/ops"), 0.0);
  source = 41;
  EXPECT_EQ(reg.value("sub/ops"), 41.0);  // no re-registration needed
}

TEST(Metrics, BoundGaugeComputesAtReadTime) {
  MetricsRegistry reg;
  double level = 1.5;
  reg.bind_gauge("sub/level", [&level] { return level; });
  EXPECT_DOUBLE_EQ(reg.value("sub/level"), 1.5);
  level = -2.0;
  EXPECT_DOUBLE_EQ(reg.value("sub/level"), -2.0);
}

TEST(Metrics, KindClashAborts) {
  MetricsRegistry reg;
  reg.counter("dup");
  EXPECT_DEATH(reg.gauge("dup"), "different kind");
}

TEST(Metrics, ContainsAndLenientValue) {
  MetricsRegistry reg;
  reg.counter("present");
  EXPECT_TRUE(reg.contains("present"));
  EXPECT_FALSE(reg.contains("absent"));
  EXPECT_EQ(reg.value("absent"), 0.0);  // lenient: reports stay total
}

TEST(Metrics, SumAggregatesPrefixSuffix) {
  MetricsRegistry reg;
  reg.counter("node0/cpu0/steals") = 2;
  reg.counter("node0/cpu1/steals") = 3;
  reg.counter("node0/cpu1/dispatches") = 100;  // wrong suffix
  reg.counter("node1/cpu0/steals") = 50;       // wrong prefix
  EXPECT_EQ(reg.sum("node0/cpu", "/steals"), 5u);
}

TEST(Metrics, VisitIsNameOrdered) {
  MetricsRegistry reg;
  reg.counter("b");
  reg.counter("a");
  reg.gauge("c") = 1;
  std::vector<std::string> names;
  reg.visit([&](const MetricsRegistry::View& v) {
    names.emplace_back(v.name);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Metrics, HistogramExportsPercentiles) {
  MetricsRegistry reg;
  Log2Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 100; ++i) h.add(1000);
  EXPECT_EQ(reg.find_histogram("lat"), &h);
  EXPECT_EQ(reg.find_histogram("other"), nullptr);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":100"), std::string::npos);
}

TEST(Metrics, ToJsonIsValidJson) {
  MetricsRegistry reg;
  reg.counter("plain") = 7;
  reg.counter("weird \"name\"\nwith\\escapes") = 1;
  reg.gauge("g") = 0.25;
  std::uint64_t bound = 9;
  reg.bind_counter("bound", &bound);
  reg.histogram("h").add(42);
  const std::string json = reg.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"plain\":7"), std::string::npos);
  EXPECT_NE(json.find("\"bound\":9"), std::string::npos);
}

TEST(Metrics, EmptyRegistryToJsonIsValid) {
  MetricsRegistry reg;
  EXPECT_TRUE(json_valid(reg.to_json()));
}

}  // namespace
}  // namespace pm2
