// SlotMap: id-indexed registry with O(1) insert/erase and slot reuse —
// the registry behind marcel::Node hooks and piom::Server work probes.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/slot_map.hpp"

namespace pm2 {
namespace {

TEST(SlotMap, InsertAssignsDistinctPositiveIds) {
  SlotMap<int> m;
  const int a = m.insert(10);
  const int b = m.insert(20);
  const int c = m.insert(30);
  EXPECT_GT(a, 0);
  EXPECT_GT(b, 0);
  EXPECT_GT(c, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.contains(a));
  EXPECT_TRUE(m.contains(b));
  EXPECT_TRUE(m.contains(c));
}

TEST(SlotMap, EraseRemovesOnlyTheNamedEntry) {
  SlotMap<int> m;
  const int a = m.insert(1);
  const int b = m.insert(2);
  m.erase(a);
  EXPECT_FALSE(m.contains(a));
  EXPECT_TRUE(m.contains(b));
  EXPECT_EQ(m.size(), 1u);
}

TEST(SlotMap, StaleIdIsIgnored) {
  SlotMap<int> m;
  const int a = m.insert(1);
  m.erase(a);
  m.erase(a);  // double erase: no-op
  EXPECT_EQ(m.size(), 0u);
  const int b = m.insert(2);  // recycles a's slot with a new generation
  m.erase(a);                 // stale id must not remove the stranger
  EXPECT_TRUE(m.contains(b));
  EXPECT_FALSE(m.contains(a));
  EXPECT_EQ(m.size(), 1u);
  m.erase(0);   // never-issued ids are ignored too
  m.erase(-1);
  EXPECT_EQ(m.size(), 1u);
}

TEST(SlotMap, ForEachVisitsLiveEntriesInSlotOrder) {
  SlotMap<int> m;
  const int a = m.insert(1);
  m.insert(2);
  m.insert(3);
  m.erase(a);
  const int d = m.insert(4);  // reuses slot 0
  (void)d;
  std::vector<int> seen;
  m.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{4, 2, 3}));
  EXPECT_TRUE(m.any_of([](int v) { return v == 3; }));
  EXPECT_FALSE(m.any_of([](int v) { return v == 99; }));
}

TEST(SlotMap, ChurnReusesSlotsInsteadOfGrowing) {
  // The regression the SlotMap exists for: a register/unregister churn of
  // 1000 entries must neither scan (O(1) erase) nor grow the table — the
  // old erase-by-linear-scan registry made this quadratic, and a
  // monotonically growing id table would leak slots.
  SlotMap<int> m;
  std::set<int> issued;
  for (int i = 0; i < 1000; ++i) {
    const int id = m.insert(i);
    EXPECT_TRUE(issued.insert(id).second) << "live ids must be unique";
    if (i % 3 == 0) {
      m.erase(id);
      issued.erase(id);
    }
    EXPECT_LE(m.slot_count(), 1000u);
  }
  for (const int id : issued) m.erase(id);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.slot_count(), 0u) << "freed tail must be trimmed";

  // Steady-state churn at a small live population: the table stays at the
  // high-water mark of the *live* count, not of the ids ever issued.
  std::vector<int> live;
  for (int i = 0; i < 4; ++i) live.push_back(m.insert(i));
  for (int i = 0; i < 1000; ++i) {
    m.erase(live[static_cast<std::size_t>(i) % live.size()]);
    live[static_cast<std::size_t>(i) % live.size()] = m.insert(i);
    EXPECT_LE(m.slot_count(), 5u);
  }
}

TEST(SlotMap, TailTrimKeepsFreelistConsistent) {
  SlotMap<int> m;
  const int a = m.insert(1);
  const int b = m.insert(2);
  const int c = m.insert(3);
  m.erase(b);              // hole in the middle: stays on the freelist
  EXPECT_EQ(m.slot_count(), 3u);
  m.erase(c);              // trims c's slot AND the freed b slot
  EXPECT_EQ(m.slot_count(), 1u);
  EXPECT_TRUE(m.contains(a));
  const int d = m.insert(4);
  const int e = m.insert(5);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.contains(d));
  EXPECT_TRUE(m.contains(e));
  EXPECT_LE(m.slot_count(), 3u);
}

}  // namespace
}  // namespace pm2
