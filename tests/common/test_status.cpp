#include <gtest/gtest.h>

#include "common/status.hpp"

namespace pm2 {
namespace {

TEST(Status, ToString) {
  EXPECT_EQ(to_string(Status::kOk), "ok");
  EXPECT_EQ(to_string(Status::kAgain), "again");
  EXPECT_EQ(to_string(Status::kTimedOut), "timed-out");
  EXPECT_EQ(to_string(Status::kInternal), "internal");
}

TEST(Status, OkHelper) {
  EXPECT_TRUE(ok(Status::kOk));
  EXPECT_FALSE(ok(Status::kAgain));
  EXPECT_FALSE(ok(Status::kClosed));
}

}  // namespace
}  // namespace pm2
