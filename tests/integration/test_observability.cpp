// Flight recorder + attribution + metrics.json, end to end: stage-ordering
// invariants (also under fault-injected retransmits), the offload
// critical-path claim, and the exported artefacts' validity.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "nmad/reliable.hpp"
#include "pm2/attribution.hpp"
#include "pm2/cluster.hpp"
#include "pm2/report.hpp"
#include "sim/trace.hpp"

namespace pm2 {
namespace {

/// Symmetric ping-pong with overlap compute, the Fig. 4 kernel shape.
void run_pingpong(Cluster& cluster, std::size_t size, int iters,
                  SimDuration comp = 20 * kUs) {
  static std::vector<std::byte> data0, data1, rx0, rx1;
  data0.assign(size, std::byte{0xa5});
  data1.assign(size, std::byte{0x5a});
  rx0.assign(size, std::byte{0});
  rx1.assign(size, std::byte{0});
  cluster.run_on(0, [&cluster, iters, comp] {
    for (int i = 0; i < iters; ++i) {
      nm::Request* s = cluster.comm(0).isend(1, 1, data0);
      marcel::this_thread::compute(comp);
      cluster.comm(0).wait(s);
      nm::Request* r = cluster.comm(0).irecv(1, 2, rx0);
      marcel::this_thread::compute(comp);
      cluster.comm(0).wait(r);
    }
  });
  cluster.run_on(1, [&cluster, iters, comp] {
    for (int i = 0; i < iters; ++i) {
      nm::Request* r = cluster.comm(1).irecv(0, 1, rx1);
      marcel::this_thread::compute(comp);
      cluster.comm(1).wait(r);
      nm::Request* s = cluster.comm(1).isend(0, 2, data1);
      marcel::this_thread::compute(comp);
      cluster.comm(1).wait(s);
    }
  });
  cluster.run();
}

void expect_all_ordered(Cluster& cluster) {
  for (unsigned n = 0; n < cluster.nodes(); ++n) {
    const nm::FlightRecorder* rec = cluster.flight(n);
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->size(), 0u);
    for (std::size_t i = 0; i < rec->size(); ++i) {
      const nm::FlightRecord& f = rec->record(i);
      EXPECT_NE(f.id, 0u);
      EXPECT_EQ(f.node, n);
      EXPECT_NE(f.at(nm::Stage::kPosted), 0u) << "record " << i;
      EXPECT_NE(f.at(nm::Stage::kCompleted), 0u) << "record " << i;
      EXPECT_TRUE(f.ordered())
          << "node " << n << " record " << i << " violates stage ordering";
    }
  }
}

TEST(Observability, FlightRecordsObeyStageOrdering) {
  ClusterConfig cfg;
  cfg.flight = true;
  Cluster cluster(cfg);
  run_pingpong(cluster, 4096, 6);        // eager path
  EXPECT_EQ(cluster.flight(0)->node(), 0u);
  expect_all_ordered(cluster);
}

TEST(Observability, RendezvousFlightsAlsoOrdered) {
  ClusterConfig cfg;
  cfg.flight = true;
  Cluster cluster(cfg);
  run_pingpong(cluster, 128 * 1024, 4, 100 * kUs);  // above rdv threshold
  expect_all_ordered(cluster);
  // Rendezvous records are flagged as such.
  bool saw_rdv = false;
  for (std::size_t i = 0; i < cluster.flight(0)->size(); ++i) {
    saw_rdv = saw_rdv || cluster.flight(0)->record(i).rdv;
  }
  EXPECT_TRUE(saw_rdv);
}

TEST(Observability, OrderingHoldsUnderFaultInjectedRetransmits) {
  ClusterConfig cfg;
  cfg.flight = true;
  cfg.nm.reliable = true;
  cfg.faults.defaults.drop = 0.15;
  cfg.faults.defaults.duplicate = 0.10;
  cfg.faults.defaults.corrupt = 0.05;
  Cluster cluster(cfg);
  run_pingpong(cluster, 2048, 20);
  // The plan is aggressive enough that this seed certainly retransmits.
  std::uint64_t retransmits = 0;
  for (unsigned n = 0; n < cluster.nodes(); ++n) {
    retransmits += cluster.comm(n).reliability()->stats().retransmits;
  }
  EXPECT_GT(retransmits, 0u);
  // Duplicate arrivals and retransmissions must not move first-write
  // stamps: every surviving record still satisfies the stage chains.
  expect_all_ordered(cluster);
}

TEST(Observability, OffloadLowersCriticalPath) {
  const auto run_mode = [](bool pioman) {
    ClusterConfig cfg;
    cfg.pioman = pioman;
    cfg.flight = true;
    Cluster cluster(cfg);
    run_pingpong(cluster, 4096, 8);
    return attribute_flights({cluster.flight(0), cluster.flight(1)});
  };
  const Attribution base = run_mode(false);
  const Attribution offl = run_mode(true);
  ASSERT_GT(base.sends, 0u);
  ASSERT_EQ(base.sends, offl.sends);  // identical workload
  EXPECT_EQ(base.offloaded, 0u);      // app-driven: nothing leaves the thread
  EXPECT_GT(offl.offloaded, 0u);
  EXPECT_LT(offl.crit_us.mean(), base.crit_us.mean());
  EXPECT_GT(offl.offl_us.mean(), 0.0);
  EXPECT_GT(base.pairs, 0u);
  EXPECT_GT(base.wire_us.mean(), 0.0);
}

TEST(Observability, RingWrapCountsDropped) {
  ClusterConfig cfg;
  cfg.flight = true;
  cfg.flight_capacity = 4;  // force wraps
  Cluster cluster(cfg);
  run_pingpong(cluster, 1024, 8);
  const nm::FlightRecorder* rec = cluster.flight(0);
  EXPECT_EQ(rec->size(), 4u);
  EXPECT_EQ(rec->total(), rec->size() + rec->dropped());
  EXPECT_GT(rec->dropped(), 0u);
  expect_all_ordered(cluster);
  // The drop count is also a bound gauge and a report line.
  EXPECT_EQ(cluster.metrics().value("node0/flight/dropped"),
            static_cast<double>(rec->dropped()));
  EXPECT_NE(format_report(cluster).find("records dropped"),
            std::string::npos);
}

TEST(Observability, EngineLockContentionIsProfiled) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  run_pingpong(cluster, 4096, 8);
  cluster.flush_observability();
  const MetricsRegistry& m = cluster.metrics();
  for (unsigned n = 0; n < cluster.nodes(); ++n) {
    const std::string lock = "node" + std::to_string(n) + "/locks/engine";
    const double acq = m.value(lock + "/acq");
    const double contended = m.value(lock + "/contended");
    EXPECT_GT(acq, 0.0) << lock;
    EXPECT_GE(acq, contended) << lock;
    const Log2Histogram* wait = m.find_histogram(lock + "/wait_us");
    const Log2Histogram* hold = m.find_histogram(lock + "/hold_us");
    ASSERT_NE(wait, nullptr) << lock;
    ASSERT_NE(hold, nullptr) << lock;
    // Wait samples are recorded for contended acquisitions only; every
    // outermost release records a hold.
    EXPECT_EQ(static_cast<double>(wait->total()), contended) << lock;
    EXPECT_EQ(static_cast<double>(hold->total()), acq) << lock;
  }
  // The report surfaces the same numbers.
  EXPECT_NE(format_report(cluster).find("lock: engine"), std::string::npos);
}

TEST(Observability, LockProfileDeterministicUnderFuzzSeed) {
  const auto run_once = [] {
    ClusterConfig cfg;
    cfg.fuzz_seed = 0xc0ffee;
    Cluster cluster(cfg);
    run_pingpong(cluster, 4096, 8);
    cluster.flush_observability();
    return std::pair<double, double>{
        cluster.metrics().value("node0/locks/engine/acq"),
        cluster.metrics().value("node0/locks/engine/contended")};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Observability, CoreStatesSumToSimTime) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  run_pingpong(cluster, 4096, 8);
  cluster.flush_observability();
  const MetricsRegistry& m = cluster.metrics();
  static const char* kStates[] = {"idle", "app", "engine", "tasklet",
                                  "blocked"};
  for (unsigned n = 0; n < cluster.nodes(); ++n) {
    for (unsigned c = 0; c < cluster.node(n).cpu_count(); ++c) {
      const std::string p = "node" + std::to_string(n) + "/cpu" +
                            std::to_string(c) + "/state/";
      std::uint64_t sum = 0;
      for (const char* s : kStates) {
        sum += static_cast<std::uint64_t>(m.value(p + s + "_ns"));
      }
      EXPECT_EQ(sum, cluster.now()) << p;
    }
  }
  // The engine and tasklet buckets are exercised by a PIOMan run.
  EXPECT_GT(m.sum("node0/cpu", "/state/engine_ns"), 0u);
  EXPECT_GT(m.sum("node0/cpu", "/state/app_ns"), 0u);
}

TEST(Observability, MetricsJsonExportIsValid) {
  const std::string path = ::testing::TempDir() + "/pm2_metrics_test.json";
  {
    ClusterConfig cfg;
    cfg.flight = true;
    Cluster cluster(cfg);
    run_pingpong(cluster, 4096, 4);
    ASSERT_TRUE(cluster.write_metrics_json(path));
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) doc.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(json_valid(doc));
  EXPECT_NE(doc.find("\"schema\":\"pm2-metrics-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"attribution\""), std::string::npos);
  EXPECT_NE(doc.find("node0/nm/sends"), std::string::npos);
  EXPECT_NE(doc.find("attribution/critical_path_us_mean"),
            std::string::npos);
}

TEST(Observability, ReportReadsFromRegistry) {
  ClusterConfig cfg;
  cfg.flight = true;
  Cluster cluster(cfg);
  run_pingpong(cluster, 4096, 4);
  const std::string report = format_report(cluster);
  EXPECT_NE(report.find("node 0:"), std::string::npos);
  EXPECT_NE(report.find("node 1:"), std::string::npos);
  EXPECT_NE(report.find("attribution:"), std::string::npos);
  EXPECT_NE(report.find("critical-path"), std::string::npos);
  // The report's numbers come from the registry; spot-check one against
  // the subsystem truth.
  EXPECT_EQ(cluster.metrics().value("node0/nm/sends"),
            static_cast<double>(cluster.comm(0).stats().sends));
}

TEST(Observability, ClusterTraceWithFlightIsValidJsonWithFlows) {
  sim::Tracer tracer;
  ClusterConfig cfg;
  cfg.flight = true;
  Cluster cluster(cfg);
  cluster.attach_tracer(&tracer);
  run_pingpong(cluster, 4096, 4);
  sim::export_registry(tracer, cluster.metrics(), cluster.now());
  const std::string json = tracer.to_json();
  EXPECT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("nm:isend"), std::string::npos);
  EXPECT_NE(json.find("nm:inject"), std::string::npos);
}

}  // namespace
}  // namespace pm2
