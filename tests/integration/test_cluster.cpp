// Full-stack integration: the Cluster facade, the stencil meta-application,
// determinism, multi-node topologies, and cross-layer statistics.
#include <gtest/gtest.h>

#include <vector>

#include "pm2/cluster.hpp"
#include "pm2/stencil.hpp"

namespace pm2 {
namespace {

TEST(Cluster, DefaultConfigBringsUpFullStack) {
  Cluster cluster;  // 2 nodes × 8 cores, PIOMan on
  EXPECT_EQ(cluster.nodes(), 2u);
  EXPECT_NE(cluster.server(0), nullptr);
  EXPECT_NE(cluster.server(1), nullptr);
  EXPECT_EQ(cluster.comm(0).node_id(), 0u);
  EXPECT_EQ(cluster.comm(1).node_id(), 1u);
  EXPECT_EQ(cluster.fabric().nodes(), 2u);
}

TEST(Cluster, BaselineHasNoServer) {
  ClusterConfig cfg;
  cfg.pioman = false;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.server(0), nullptr);
  EXPECT_EQ(cluster.comm(0).server(), nullptr);
}

TEST(Cluster, RunToQuiescenceIsIdempotent) {
  Cluster cluster;
  bool ran = false;
  cluster.run_on(0, [&] { ran = true; });
  cluster.run();
  EXPECT_TRUE(ran);
  const SimTime t = cluster.now();
  cluster.run();  // nothing left: time must not advance
  EXPECT_EQ(cluster.now(), t);
}

TEST(Cluster, DeterministicAcrossRuns) {
  auto once = [] {
    ClusterConfig cfg;
    cfg.cpus_per_node = 4;
    Cluster cluster(cfg);
    std::vector<std::byte> data(10'000, std::byte{1});
    std::vector<std::byte> rx(10'000);
    cluster.run_on(0, [&] {
      for (int i = 0; i < 5; ++i) {
        nm::Request* s = cluster.comm(0).isend(1, 1, data);
        marcel::this_thread::compute(17 * kUs);
        cluster.comm(0).wait(s);
      }
    });
    cluster.run_on(1, [&] {
      for (int i = 0; i < 5; ++i) {
        nm::Request* r = cluster.comm(1).irecv(0, 1, rx);
        marcel::this_thread::compute(23 * kUs);
        cluster.comm(1).wait(r);
      }
    });
    cluster.run();
    return std::pair(cluster.now(), cluster.engine().events_processed());
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first) << "virtual end time must be reproducible";
  EXPECT_EQ(a.second, b.second) << "event count must be reproducible";
}

TEST(Cluster, FourNodeAllToAll) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.cpus_per_node = 2;
  Cluster cluster(cfg);
  // Every node sends a distinct message to every other node.
  std::vector<std::vector<std::vector<std::byte>>> rx(
      4, std::vector<std::vector<std::byte>>(4, std::vector<std::byte>(64)));
  std::vector<std::vector<std::vector<std::byte>>> tx(
      4, std::vector<std::vector<std::byte>>(4, std::vector<std::byte>(64)));
  for (unsigned s = 0; s < 4; ++s) {
    for (unsigned d = 0; d < 4; ++d) {
      std::fill(tx[s][d].begin(), tx[s][d].end(), std::byte(16 * s + d));
    }
  }
  for (unsigned n = 0; n < 4; ++n) {
    cluster.run_on(n, [&, n] {
      std::vector<nm::Request*> reqs;
      for (unsigned d = 0; d < 4; ++d) {
        if (d == n) continue;
        reqs.push_back(cluster.comm(n).isend(d, 100 + n, tx[n][d]));
        reqs.push_back(cluster.comm(n).irecv(d, 100 + d, rx[n][d]));
      }
      for (nm::Request* r : reqs) cluster.comm(n).wait(r);
    });
  }
  cluster.run();
  for (unsigned n = 0; n < 4; ++n) {
    for (unsigned d = 0; d < 4; ++d) {
      if (d == n) continue;
      EXPECT_EQ(rx[n][d], tx[d][n]) << "node " << n << " from " << d;
    }
  }
}

TEST(Cluster, StatsPlumbThrough) {
  Cluster cluster;
  std::vector<std::byte> data(4096, std::byte{1});
  std::vector<std::byte> rx(4096);
  cluster.run_on(0, [&] {
    nm::Request* s = cluster.comm(0).isend(1, 1, data);
    marcel::this_thread::compute(30 * kUs);
    cluster.comm(0).wait(s);
  });
  cluster.run_on(1, [&] {
    nm::Request* r = cluster.comm(1).irecv(0, 1, rx);
    cluster.comm(1).wait(r);
  });
  cluster.run();
  EXPECT_EQ(cluster.comm(0).stats().sends, 1u);
  EXPECT_EQ(cluster.comm(1).stats().recvs, 1u);
  EXPECT_GE(cluster.server(0)->stats().posted_items, 1u);
  EXPECT_GT(cluster.fabric().nic(0).stats().bytes_tx, 4096u);
  const auto totals = cluster.runtime().total_stats();
  EXPECT_GT(totals.thread_busy_ns, 0u);
  EXPECT_GT(totals.ctx_switches, 0u);
}

// ------------------------------------------------------------- stencil

TEST(Stencil, SmallGridCompletes) {
  apps::StencilConfig scfg;
  scfg.grid_rows = 2;
  scfg.grid_cols = 2;
  scfg.iterations = 3;
  scfg.frontier_bytes = 1024;
  scfg.interior_compute = 20 * kUs;
  scfg.frontier_compute = 5 * kUs;
  ClusterConfig ccfg;
  ccfg.cpus_per_node = 4;
  const auto result = apps::run_stencil(scfg, ccfg);
  EXPECT_GT(result.iteration_us, 0.0);
  EXPECT_EQ(result.messages, 3u * (2u * 4u));  // 4 directed edges, 3 iters
}

TEST(Stencil, OffloadNeverLosesBadly) {
  // Property over several shapes: PIOMan within 5% of (usually better
  // than) the baseline.
  for (const unsigned dim : {2u, 3u}) {
    apps::StencilConfig scfg;
    scfg.grid_rows = dim;
    scfg.grid_cols = dim;
    scfg.iterations = 5;
    scfg.frontier_bytes = 8 * 1024;
    ClusterConfig ccfg;
    ccfg.cpus_per_node = 8;
    ccfg.pioman = false;
    const double base = apps::run_stencil(scfg, ccfg).iteration_us;
    ccfg.pioman = true;
    const double piom = apps::run_stencil(scfg, ccfg).iteration_us;
    EXPECT_LE(piom, base * 1.05) << dim << "x" << dim;
  }
}

TEST(Stencil, JitterIsDeterministic) {
  apps::StencilConfig scfg;
  scfg.grid_rows = 2;
  scfg.grid_cols = 2;
  scfg.iterations = 4;
  ClusterConfig ccfg;
  ccfg.cpus_per_node = 4;
  const auto a = apps::run_stencil(scfg, ccfg);
  const auto b = apps::run_stencil(scfg, ccfg);
  EXPECT_DOUBLE_EQ(a.total_us, b.total_us);
}

TEST(Stencil, MoreIdleCoresMoreOffload) {
  apps::StencilConfig scfg;
  scfg.grid_rows = 2;
  scfg.grid_cols = 2;
  scfg.iterations = 5;
  ClusterConfig ccfg;
  ccfg.cpus_per_node = 8;  // 2 threads/node on 8 cores: 6 idle
  const auto spacious = apps::run_stencil(scfg, ccfg);
  ccfg.cpus_per_node = 2;  // no statically idle cores
  const auto tight = apps::run_stencil(scfg, ccfg);
  EXPECT_GT(spacious.offloaded_submissions, tight.offloaded_submissions);
}

}  // namespace
}  // namespace pm2
