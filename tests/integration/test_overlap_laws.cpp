// Parameterized "overlap laws": across a grid of (message size, compute
// time), the baseline obeys time ≈ comm + comp and PIOMan obeys
// time ≈ max(comm, comp) + ε.  This is the paper's core claim checked as
// a property rather than at single points.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "pm2/cluster.hpp"

namespace pm2 {
namespace {

/// Sender-side time of [isend; compute; swait] in a lockstep ping-pong.
SimDuration fig4_send_time(bool pioman, std::size_t size, SimDuration comp) {
  ClusterConfig cfg;
  cfg.pioman = pioman;
  Cluster cluster(cfg);
  std::vector<std::byte> d0(size, std::byte{1}), d1(size, std::byte{2});
  std::vector<std::byte> r0(size), r1(size);
  Samples samples;
  cluster.run_on(0, [&] {
    for (int i = 0; i < 8; ++i) {
      const SimTime t0 = cluster.now();
      nm::Request* s = cluster.comm(0).isend(1, 1, d0);
      marcel::this_thread::compute(comp);
      cluster.comm(0).wait(s);
      if (i >= 2) samples.add(static_cast<double>(cluster.now() - t0));
      nm::Request* r = cluster.comm(0).irecv(1, 2, r0);
      marcel::this_thread::compute(comp);
      cluster.comm(0).wait(r);
    }
  });
  cluster.run_on(1, [&] {
    for (int i = 0; i < 8; ++i) {
      nm::Request* r = cluster.comm(1).irecv(0, 1, r1);
      marcel::this_thread::compute(comp);
      cluster.comm(1).wait(r);
      nm::Request* s = cluster.comm(1).isend(0, 2, d1);
      marcel::this_thread::compute(comp);
      cluster.comm(1).wait(s);
    }
  });
  cluster.run();
  return static_cast<SimDuration>(samples.mean());
}

using Param = std::tuple<std::size_t, SimDuration>;

class OverlapLaws : public ::testing::TestWithParam<Param> {};

TEST_P(OverlapLaws, SumAndMaxLaws) {
  const auto [size, comp] = GetParam();
  const SimDuration ref = fig4_send_time(true, size, 0);
  const SimDuration base = fig4_send_time(false, size, comp);
  const SimDuration piom = fig4_send_time(true, size, comp);

  // Baseline law: serialization. Allow small slack for per-op bookkeeping
  // differences between the reference and loaded runs.
  EXPECT_GE(base + 3 * kUs, ref + comp)
      << "baseline must pay comm+comp (size=" << size
      << " comp=" << to_us(comp) << "us)";

  // PIOMan law: overlap up to the documented ~2us machinery overhead.
  const SimDuration ideal = std::max(ref, comp);
  EXPECT_LE(piom, ideal + 5 * kUs)
      << "PIOMan must overlap (size=" << size << " comp=" << to_us(comp)
      << "us)";
  // And it never does better than physics allows.
  EXPECT_GE(piom + kUs, ideal);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OverlapLaws,
    ::testing::Combine(
        ::testing::Values(std::size_t{1024}, std::size_t{8 * 1024},
                          std::size_t{32 * 1024}, std::size_t{128 * 1024},
                          std::size_t{512 * 1024}),
        ::testing::Values(SimDuration{0}, 20 * kUs, 100 * kUs, 400 * kUs)),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      return "s" + std::to_string(std::get<0>(pinfo.param)) + "_c" +
             std::to_string(std::get<1>(pinfo.param) / kUs) + "us";
    });

}  // namespace
}  // namespace pm2
