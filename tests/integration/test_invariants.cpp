// Cross-layer conservation and accounting invariants, checked over
// parameterized workloads:
//  * bytes out == bytes in (per fabric),
//  * PIOMan posted == offloaded + flushed,
//  * every send matches exactly one recv,
//  * CPU time accounting is consistent with wall time × cores.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "pm2/cluster.hpp"
#include "pm2/report.hpp"
#include "sim/rng.hpp"

namespace pm2 {
namespace {

using Param = std::tuple<bool /*pioman*/, std::size_t /*msg size*/,
                         int /*messages*/>;

class Invariants : public ::testing::TestWithParam<Param> {};

TEST_P(Invariants, ConservationLaws) {
  const auto [pioman, size, count] = GetParam();
  ClusterConfig cfg;
  cfg.cpus_per_node = 4;
  cfg.pioman = pioman;
  Cluster cluster(cfg);

  std::vector<std::vector<std::byte>> tx(count,
                                         std::vector<std::byte>(size));
  std::vector<std::vector<std::byte>> rx(count,
                                         std::vector<std::byte>(size));
  for (int i = 0; i < count; ++i) {
    std::fill(tx[i].begin(), tx[i].end(), std::byte(i + 1));
  }
  cluster.run_on(0, [&] {
    for (int i = 0; i < count; ++i) {
      nm::Request* s = cluster.comm(0).isend(1, 1, tx[i]);
      marcel::this_thread::compute(7 * kUs);
      cluster.comm(0).wait(s);
    }
  });
  cluster.run_on(1, [&] {
    for (int i = 0; i < count; ++i) {
      nm::Request* r = cluster.comm(1).irecv(0, 1, rx[i]);
      marcel::this_thread::compute(11 * kUs);
      cluster.comm(1).wait(r);
    }
  });
  cluster.run();

  // 1. Payload integrity.
  for (int i = 0; i < count; ++i) EXPECT_EQ(rx[i], tx[i]);

  // 2. Fabric conservation: everything sent was delivered.
  std::uint64_t bytes_tx = 0, bytes_rx = 0, pk_tx = 0, pk_rx = 0;
  for (unsigned n = 0; n < cluster.nodes(); ++n) {
    const auto& s = cluster.fabric().nic(n).stats();
    bytes_tx += s.bytes_tx;
    bytes_rx += s.bytes_rx;
    pk_tx += s.packets_tx;
    pk_rx += s.packets_rx;
  }
  EXPECT_EQ(bytes_tx, bytes_rx);
  // RDMA completions count as rx "packets" on delivery.
  EXPECT_LE(pk_tx, pk_rx);

  // 3. Matching: every send matched exactly one recv, none outstanding.
  const auto& s0 = cluster.comm(0).stats();
  const auto& s1 = cluster.comm(1).stats();
  EXPECT_EQ(s0.sends, static_cast<std::uint64_t>(count));
  EXPECT_EQ(s1.recvs, static_cast<std::uint64_t>(count));
  EXPECT_EQ(s1.expected_eager + s1.unexpected_eager + s0.rdv_sends,
            static_cast<std::uint64_t>(count));

  // 4. PIOMan ledger: every posted item ran exactly once, somewhere.
  if (pioman) {
    for (unsigned n = 0; n < cluster.nodes(); ++n) {
      const auto& ps = cluster.server(n)->stats();
      EXPECT_EQ(ps.posted_items, ps.posted_offloaded + ps.posted_flushed)
          << "node " << n;
      EXPECT_EQ(cluster.server(n)->posted_pending(), 0u);
      EXPECT_EQ(cluster.server(n)->armed(), 0u)
          << "all requests completed: nothing may stay armed";
      EXPECT_EQ(cluster.server(n)->armed_critical(), 0u);
    }
  }

  // 5. CPU accounting: busy time per node never exceeds wall × cores.
  const double wall = static_cast<double>(cluster.now());
  for (unsigned n = 0; n < cluster.nodes(); ++n) {
    marcel::Cpu::Stats total;
    for (unsigned c = 0; c < cluster.node(n).cpu_count(); ++c) {
      total.merge(cluster.node(n).cpu(c).stats());
    }
    const double busy = static_cast<double>(total.thread_busy_ns) +
                        static_cast<double>(total.service_busy_ns);
    EXPECT_LE(busy, wall * cluster.node(n).cpu_count() * 1.0001);
  }

  // 6. The report renders without blowing up and mentions every node.
  const std::string report = format_report(cluster);
  EXPECT_NE(report.find("node 0:"), std::string::npos);
  EXPECT_NE(report.find("node 1:"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, Invariants,
    ::testing::Values(Param{true, 512, 20}, Param{false, 512, 20},
                      Param{true, 16 * 1024, 10},
                      Param{false, 16 * 1024, 10},
                      Param{true, 100 * 1024, 5},
                      Param{false, 100 * 1024, 5},
                      Param{true, 1, 50}, Param{true, 32 * 1024, 8},
                      Param{true, 33 * 1024, 8}),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      return std::string(std::get<0>(pinfo.param) ? "Pioman" : "AppDriven") +
             "_" + std::to_string(std::get<1>(pinfo.param)) + "B_x" +
             std::to_string(std::get<2>(pinfo.param));
    });

}  // namespace
}  // namespace pm2
