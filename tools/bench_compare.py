#!/usr/bin/env python3
"""Benchmark-trajectory tooling for the pm2-bench-v1 records.

Every benchmark run with `--json <path>` writes a pm2-bench-v1 document:

    {"schema": "pm2-bench-v1", "bench": "<name>",
     "records": [{"case": "<c>",
                  "metrics": {"<key>": {"value": v, "gate": g}}}]}

where gate is "lower" (a regression when the value rises), "higher" (a
regression when it falls) or "none" (informational: lock contention,
core time-in-state, ...).  This tool aggregates those documents into the
repo-root trajectory file and gates CI against the committed baseline:

    bench_compare.py collect -o BENCH_core.json fig5.json fig6.json ...
        Merge per-bench documents into a pm2-bench-trajectory-v1 file.

    bench_compare.py compare BASELINE.json NEW.json [--threshold 0.10]
        Exit nonzero when any gated metric regressed by more than the
        threshold (default 10%), or when a gated metric disappeared.
        The simulation is deterministic, so any drift is a real change;
        the threshold only gives intentional model tweaks headroom.

    bench_compare.py selftest
        Verify the gate logic on synthetic data (used by CI and tests).
"""

import argparse
import json
import sys

TRAJECTORY_SCHEMA = "pm2-bench-trajectory-v1"
BENCH_SCHEMA = "pm2-bench-v1"


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value must be an object")
    return doc


def check_bench_doc(path: str, doc: dict) -> None:
    if doc.get("schema") != BENCH_SCHEMA:
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(f"{path}: bench name missing")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: records missing or empty")
    for rec in records:
        if not isinstance(rec.get("case"), str):
            fail(f"{path}: record without a case name")
        metrics = rec.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            fail(f"{path}: case {rec.get('case')}: metrics missing")
        for key, m in metrics.items():
            if not isinstance(m.get("value"), (int, float)):
                fail(f"{path}: {rec['case']}/{key}: value missing")
            if m.get("gate") not in ("lower", "higher", "none"):
                fail(f"{path}: {rec['case']}/{key}: bad gate "
                     f"{m.get('gate')!r}")


def collect(out_path: str, inputs: list) -> None:
    benches = {}
    for path in inputs:
        doc = load(path)
        check_bench_doc(path, doc)
        name = doc["bench"]
        if name in benches:
            fail(f"{path}: duplicate bench {name!r}")
        benches[name] = {"records": doc["records"]}
    trajectory = {"schema": TRAJECTORY_SCHEMA, "benches": benches}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=1, sort_keys=True)
        f.write("\n")
    cases = sum(len(b["records"]) for b in benches.values())
    print(f"bench_compare: wrote {out_path} "
          f"({len(benches)} benches, {cases} cases)")


def flatten(doc: dict, path: str) -> dict:
    """trajectory doc -> {(bench, case, key): (value, gate)}"""
    if doc.get("schema") != TRAJECTORY_SCHEMA:
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        fail(f"{path}: benches missing or empty")
    flat = {}
    for bench, body in benches.items():
        for rec in body.get("records", []):
            for key, m in rec.get("metrics", {}).items():
                flat[(bench, rec["case"], key)] = (m["value"], m["gate"])
    return flat


def compare(base_path: str, new_path: str, threshold: float) -> int:
    base = flatten(load(base_path), base_path)
    new = flatten(load(new_path), new_path)
    failures = []
    checked = 0
    for ident, (old_value, gate) in sorted(base.items()):
        if gate == "none":
            continue
        label = "/".join(ident)
        if ident not in new:
            failures.append(f"{label}: gated metric disappeared")
            continue
        new_value = new[ident][0]
        checked += 1
        if old_value == 0:
            continue  # no meaningful ratio; absolute zero baselines pass
        ratio = new_value / old_value
        if gate == "lower" and ratio > 1.0 + threshold:
            failures.append(f"{label}: {old_value:g} -> {new_value:g} "
                            f"(+{(ratio - 1) * 100:.1f}%, limit "
                            f"+{threshold * 100:.0f}%)")
        elif gate == "higher" and ratio < 1.0 - threshold:
            failures.append(f"{label}: {old_value:g} -> {new_value:g} "
                            f"({(ratio - 1) * 100:.1f}%, limit "
                            f"-{threshold * 100:.0f}%)")
    for ident in sorted(set(new) - set(base)):
        if new[ident][1] != "none":
            print(f"bench_compare: note: new gated metric "
                  f"{'/'.join(ident)} (no baseline yet)")
    if failures:
        print(f"bench_compare: {len(failures)} regression(s) vs "
              f"{base_path}:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"bench_compare: ok ({checked} gated metrics within "
          f"{threshold * 100:.0f}% of {base_path})")
    return 0


def selftest() -> int:
    def traj(**values):
        return {"schema": TRAJECTORY_SCHEMA, "benches": {
            "b": {"records": [{"case": "c", "metrics": {
                k: {"value": v, "gate": g} for k, (v, g) in values.items()
            }}]}}}

    import os
    import tempfile

    def run(base, new):
        with tempfile.TemporaryDirectory() as d:
            bp, np_ = os.path.join(d, "base.json"), os.path.join(d, "new.json")
            with open(bp, "w", encoding="utf-8") as f:
                json.dump(base, f)
            with open(np_, "w", encoding="utf-8") as f:
                json.dump(new, f)
            return compare(bp, np_, 0.10)

    base = traj(lat=(100.0, "lower"), rate=(50.0, "higher"),
                info=(7.0, "none"))
    ok_new = traj(lat=(105.0, "lower"), rate=(48.0, "higher"),
                  info=(900.0, "none"))
    assert run(base, ok_new) == 0, "within-threshold drift must pass"
    slow = traj(lat=(111.0, "lower"), rate=(50.0, "higher"),
                info=(7.0, "none"))
    assert run(base, slow) == 1, "an 11% latency rise must fail"
    lost = traj(lat=(100.0, "lower"), rate=(44.0, "higher"),
                info=(7.0, "none"))
    assert run(base, lost) == 1, "a 12% throughput drop must fail"
    gone = traj(rate=(50.0, "higher"))
    assert run(base, gone) == 1, "a vanished gated metric must fail"
    print("bench_compare: selftest ok")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_collect = sub.add_parser("collect")
    p_collect.add_argument("-o", "--output", required=True)
    p_collect.add_argument("inputs", nargs="+")
    p_compare = sub.add_parser("compare")
    p_compare.add_argument("baseline")
    p_compare.add_argument("new")
    p_compare.add_argument("--threshold", type=float, default=0.10)
    sub.add_parser("selftest")
    args = parser.parse_args()
    if args.cmd == "collect":
        collect(args.output, args.inputs)
    elif args.cmd == "compare":
        sys.exit(compare(args.baseline, args.new, args.threshold))
    else:
        sys.exit(selftest())


if __name__ == "__main__":
    main()
