#!/usr/bin/env python3
"""Validate a pm2 metrics.json artefact (schema pm2-metrics-v1).

Usage:
    check_metrics.py METRICS_JSON [--expect-coll] [--expect-locks]
                     [--expect-rpc] [--expect-rma] [--expect-spans]
                     [--expect-shards]
                     [--expect-offload-beats BASELINE_JSON]

Checks that the document parses, carries the expected sections, and that
the attribution numbers are internally consistent.  With
--expect-offload-beats, additionally asserts that METRICS_JSON (a PIOMan
run) shows a strictly lower mean critical path than BASELINE_JSON (the
app-driven run of the identical workload) — the paper's offload claim,
checked in CI on every push.  With --expect-coll, additionally asserts
that the collective engine ran: nodeN/coll counters present, every
started collective completed, the op-kind counters add up, and the tag
band advanced in lockstep on every node.  With --expect-locks,
additionally asserts that the lock profiler and core-state timeline are
present and consistent: every node carries engine-lock acq/contended
counters with wait/hold histograms whose totals match, and every core's
five time-in-state counters sum exactly to the simulated time.  With
--expect-rpc, additionally asserts that the RPC layer ran and conserved
its work: globally every issued call was dispatched exactly once and
every signal sent was delivered; per node every dispatch spawned a
handler that finished, every completion was satisfied, nothing is left
queued, and the handler-latency histogram accounts for every handler.
With --expect-rma, additionally asserts the one-sided conservation laws
(src/nmad/rma): per node the eager/rendezvous split accounts for every
put issued, every opened epoch closed, no wire op was dropped as
malformed, and nothing is left in flight (ops_pending and fences_parked
gauges are zero); globally every put/accumulate issued was applied
exactly once, every get was served and completed, and every fence
request was acked and received.  With --expect-shards, additionally
asserts the per-shard matching
conservation laws (src/nmad/matching): on every shard the posted receives
split exactly into matched and still-pending, arrivals split into matched
and buffered, buffered messages into claimed and still-unexpected, and
matches into match-on-arrival plus claim-from-buffer; summed over a
node's shards, the posted receives equal the node's nm/recvs counter.
With --expect-spans, additionally validates the causal-tracing section:
every opened span closed, every parent_span_id resolves inside its own
trace, span trees are acyclic with a single root, each tail exemplar's
critical path is a contiguous chain of non-negative segments covering
[begin, end], segment sums never exceed the trace duration, and for
complete RPC exemplars the segments reconstruct the end-to-end latency
to within 1%.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value must be an object")
    return doc


def check_stat(attr: dict, name: str) -> dict:
    s = attr.get(name)
    if not isinstance(s, dict):
        fail(f"attribution.{name} missing")
    for key in ("count", "mean", "min", "max"):
        if not isinstance(s.get(key), (int, float)):
            fail(f"attribution.{name}.{key} missing or non-numeric")
    if s["count"] > 0 and not (s["min"] <= s["mean"] <= s["max"]):
        fail(f"attribution.{name}: min <= mean <= max violated: {s}")
    return s


def check_document(path: str) -> dict:
    doc = load(path)
    if doc.get("schema") != "pm2-metrics-v1":
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    if not isinstance(doc.get("sim_time_us"), (int, float)):
        fail(f"{path}: sim_time_us missing")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: metrics section missing")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"{path}: metrics.{section} missing")
    counters = metrics["counters"]
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name} not a non-negative integer")
    # Every report line has a registry source; spot-check the core ones.
    for required in ("node0/nm/sends", "node0/nm/recvs",
                     "attribution/sends", "attribution/pairs"):
        if required not in counters:
            fail(f"{path}: required counter {required} absent")

    attr = doc.get("attribution")
    if not isinstance(attr, dict):
        fail(f"{path}: attribution section missing")
    for field in ("sends", "recvs", "pairs", "offloaded", "retransmitted",
                  "dropped"):
        if not isinstance(attr.get(field), int):
            fail(f"{path}: attribution.{field} missing")
    for name in ("critical_path_us", "offloaded_us", "send_critical_us",
                 "recv_critical_us", "wire_us", "wait_us"):
        check_stat(attr, name)
    if attr["pairs"] > max(attr["sends"], attr["recvs"]):
        fail(f"{path}: more pairs than requests ({attr['pairs']})")
    if attr["critical_path_us"]["count"] != attr["sends"] + attr["recvs"]:
        fail(f"{path}: critical_path count != sends + recvs")
    print(f"check_metrics: {path}: ok "
          f"({attr['sends']} sends, {attr['recvs']} recvs, "
          f"crit {attr['critical_path_us']['mean']:.2f} us, "
          f"offl {attr['offloaded_us']['mean']:.2f} us)")
    return doc


def check_coll(path: str, doc: dict) -> None:
    counters = doc["metrics"]["counters"]
    gauges = doc["metrics"]["gauges"]
    nodes = sorted({name.split("/")[0] for name in counters
                    if "/coll/" in name})
    if not nodes:
        fail(f"{path}: no nodeN/coll counters (collective engine not bound)")
    started = completed = 0
    algos = 0
    for node in nodes:
        pfx = f"{node}/coll"
        for req in ("started", "completed", "ops_executed", "ops_send",
                    "ops_recv", "ops_reduce", "ops_copy", "tag_blocks"):
            if f"{pfx}/{req}" not in counters:
                fail(f"{path}: counter {pfx}/{req} absent")
        if counters[f"{pfx}/started"] != counters[f"{pfx}/completed"]:
            fail(f"{path}: {pfx}: started != completed "
                 f"({counters[f'{pfx}/started']} vs "
                 f"{counters[f'{pfx}/completed']})")
        kinds = sum(counters[f"{pfx}/ops_{k}"]
                    for k in ("send", "recv", "reduce", "copy"))
        if counters[f"{pfx}/ops_executed"] != kinds:
            fail(f"{path}: {pfx}: ops_executed != sum of op kinds")
        started += counters[f"{pfx}/started"]
        completed += counters[f"{pfx}/completed"]
        algos += sum(v for name, v in counters.items()
                     if name.startswith(f"{pfx}/algo/"))
    if started == 0:
        fail(f"{path}: no collectives ran")
    if algos != started:
        fail(f"{path}: per-algorithm counters ({algos}) do not account "
             f"for every started collective ({started})")
    tags = {gauges.get(f"{node}/coll/tags_used") for node in nodes}
    if len(tags) != 1 or None in tags:
        fail(f"{path}: coll tag band not in lockstep across nodes: {tags}")
    print(f"check_metrics: {path}: coll ok ({started} collectives on "
          f"{len(nodes)} nodes, {tags.pop()} tags in lockstep)")


def check_locks(path: str, doc: dict) -> None:
    counters = doc["metrics"]["counters"]
    histograms = doc["metrics"]["histograms"]
    nodes = sorted({name.split("/")[0] for name in counters
                    if name.startswith("node") and "/locks/engine/" in name})
    if not nodes:
        fail(f"{path}: no nodeN/locks/engine counters (lock profiler off?)")
    total_acq = total_contended = 0
    for node in nodes:
        pfx = f"{node}/locks/engine"
        acq = counters.get(f"{pfx}/acq")
        contended = counters.get(f"{pfx}/contended")
        if not isinstance(acq, int) or acq <= 0:
            fail(f"{path}: {pfx}/acq missing or zero")
        if not isinstance(contended, int) or contended > acq:
            fail(f"{path}: {pfx}/contended missing or > acq")
        for hist, want in (("wait_us", contended), ("hold_us", acq)):
            h = histograms.get(f"{pfx}/{hist}")
            if not isinstance(h, dict):
                fail(f"{path}: histogram {pfx}/{hist} absent")
            if h.get("total") != want:
                fail(f"{path}: {pfx}/{hist} total {h.get('total')} != {want}")
        total_acq += acq
        total_contended += contended
    # Core-state timeline: the five buckets account for every simulated
    # nanosecond on every core.  sim_time_us is printed with exactly three
    # decimals, so the ns round-trip is lossless.
    sim_ns = round(doc["sim_time_us"] * 1000)
    states = ("idle", "app", "engine", "tasklet", "blocked")
    cores = sorted({name.rsplit("/state/", 1)[0] for name in counters
                    if "/state/" in name})
    if not cores:
        fail(f"{path}: no per-core state counters")
    for core in cores:
        total = 0
        for state in states:
            v = counters.get(f"{core}/state/{state}_ns")
            if not isinstance(v, int):
                fail(f"{path}: counter {core}/state/{state}_ns absent")
            total += v
        if total != sim_ns:
            fail(f"{path}: {core} states sum to {total} ns, "
                 f"expected {sim_ns} ns")
    print(f"check_metrics: {path}: locks ok ({total_acq} engine-lock acq, "
          f"{total_contended} contended on {len(nodes)} nodes; "
          f"{len(cores)} cores' state buckets sum to {sim_ns} ns)")


def check_rpc(path: str, doc: dict) -> None:
    counters = doc["metrics"]["counters"]
    gauges = doc["metrics"]["gauges"]
    histograms = doc["metrics"]["histograms"]
    nodes = sorted({name.split("/")[0] for name in counters
                    if "/rpc/" in name})
    if not nodes:
        fail(f"{path}: no nodeN/rpc counters (rpc engine not bound)")
    issued = dispatched = sig_sent = sig_delivered = 0
    for node in nodes:
        pfx = f"{node}/rpc"
        for req in ("issued", "dispatched", "handler_spawns",
                    "handlers_done", "completions_created",
                    "completions_done", "signals_sent", "signals_delivered",
                    "queue_depth_max"):
            if f"{pfx}/{req}" not in counters:
                fail(f"{path}: counter {pfx}/{req} absent")
        if not (counters[f"{pfx}/dispatched"]
                == counters[f"{pfx}/handler_spawns"]
                == counters[f"{pfx}/handlers_done"]):
            fail(f"{path}: {pfx}: dispatched/spawned/done disagree "
                 f"({counters[f'{pfx}/dispatched']}, "
                 f"{counters[f'{pfx}/handler_spawns']}, "
                 f"{counters[f'{pfx}/handlers_done']})")
        if (counters[f"{pfx}/completions_created"]
                != counters[f"{pfx}/completions_done"]):
            fail(f"{path}: {pfx}: completions created != done "
                 f"({counters[f'{pfx}/completions_created']} vs "
                 f"{counters[f'{pfx}/completions_done']})")
        if gauges.get(f"{pfx}/queue_depth") != 0:
            fail(f"{path}: {pfx}: undispatched messages left in the inbox "
                 f"({gauges.get(f'{pfx}/queue_depth')})")
        h = histograms.get(f"{pfx}/handler_ns")
        if not isinstance(h, dict):
            fail(f"{path}: histogram {pfx}/handler_ns absent")
        if h.get("total") != counters[f"{pfx}/handlers_done"]:
            fail(f"{path}: {pfx}/handler_ns total {h.get('total')} != "
                 f"handlers_done {counters[f'{pfx}/handlers_done']}")
        issued += counters[f"{pfx}/issued"]
        dispatched += counters[f"{pfx}/dispatched"]
        sig_sent += counters[f"{pfx}/signals_sent"]
        sig_delivered += counters[f"{pfx}/signals_delivered"]
    if issued == 0:
        fail(f"{path}: no RPCs ran")
    if issued != dispatched:
        fail(f"{path}: {issued} RPCs issued but {dispatched} dispatched")
    if sig_sent != sig_delivered:
        fail(f"{path}: {sig_sent} signals sent but {sig_delivered} delivered")
    print(f"check_metrics: {path}: rpc ok ({issued} calls dispatched, "
          f"{sig_sent} signals delivered on {len(nodes)} nodes)")


def check_rma(path: str, doc: dict) -> None:
    counters = doc["metrics"]["counters"]
    gauges = doc["metrics"]["gauges"]
    nodes = sorted({name.split("/")[0] for name in counters
                    if "/rma/" in name})
    if not nodes:
        fail(f"{path}: no nodeN/rma counters (rma engine not bound)")
    fields = ("api_calls", "wins_created", "epochs_opened", "epochs_closed",
              "puts_issued", "puts_eager", "puts_rdv", "puts_applied",
              "accs_issued", "accs_applied", "gets_issued", "gets_served",
              "gets_completed", "flushes", "flush_reqs", "flush_acks",
              "flush_acks_rx", "bytes_put", "bytes_got", "bytes_acc",
              "dropped_out_of_range")
    tot = {f: 0 for f in fields}
    for node in nodes:
        pfx = f"{node}/rma"
        c = {}
        for req in fields:
            v = counters.get(f"{pfx}/{req}")
            if not isinstance(v, int):
                fail(f"{path}: counter {pfx}/{req} absent")
            c[req] = v
            tot[req] += v
        if c["puts_eager"] + c["puts_rdv"] != c["puts_issued"]:
            fail(f"{path}: {pfx}: eager + rdv != puts_issued "
                 f"({c['puts_eager']} + {c['puts_rdv']} != "
                 f"{c['puts_issued']})")
        if c["epochs_opened"] != c["epochs_closed"]:
            fail(f"{path}: {pfx}: epochs opened != closed "
                 f"({c['epochs_opened']} vs {c['epochs_closed']})")
        if c["dropped_out_of_range"] != 0:
            fail(f"{path}: {pfx}: {c['dropped_out_of_range']} wire ops "
                 f"dropped as malformed")
        for g in ("ops_pending", "fences_parked"):
            v = gauges.get(f"{pfx}/{g}")
            if v != 0:
                fail(f"{path}: {pfx}/{g} is {v}, expected 0 at quiescence")
    ops = tot["puts_issued"] + tot["accs_issued"] + tot["gets_issued"]
    if ops == 0:
        fail(f"{path}: no RMA operations ran")
    laws = (
        ("puts issued == applied", tot["puts_issued"], tot["puts_applied"]),
        ("accs issued == applied", tot["accs_issued"], tot["accs_applied"]),
        ("gets issued == served", tot["gets_issued"], tot["gets_served"]),
        ("gets issued == completed", tot["gets_issued"],
         tot["gets_completed"]),
        ("fence reqs == acks sent", tot["flush_reqs"], tot["flush_acks"]),
        ("fence reqs == acks received", tot["flush_reqs"],
         tot["flush_acks_rx"]),
    )
    for law, lhs, rhs in laws:
        if lhs != rhs:
            fail(f"{path}: rma: {law} violated ({lhs} != {rhs})")
    if tot["flush_reqs"] > tot["flushes"]:
        fail(f"{path}: rma: more fence requests ({tot['flush_reqs']}) than "
             f"flush calls ({tot['flushes']})")
    print(f"check_metrics: {path}: rma ok ({tot['puts_issued']} puts, "
          f"{tot['accs_issued']} accumulates, {tot['gets_issued']} gets "
          f"conserved across {len(nodes)} nodes; {tot['flush_reqs']} fences "
          f"retired)")


def check_shards(path: str, doc: dict) -> None:
    counters = doc["metrics"]["counters"]
    gauges = doc["metrics"]["gauges"]
    nodes = sorted({name.split("/")[0] for name in counters
                    if name.startswith("node") and "/nm/shard" in name})
    if not nodes:
        fail(f"{path}: no nodeN/nm/shardS counters (matching store unbound)")
    total_shards = total_posted = 0
    for node in nodes:
        shards = sorted({name.split("/")[2] for name in counters
                         if name.startswith(f"{node}/nm/shard")})
        posted_sum = 0
        for shard in shards:
            pfx = f"{node}/nm/{shard}"
            c = {}
            for req in ("recvs_posted", "recvs_matched", "arrivals",
                        "arrivals_matched", "arrivals_buffered",
                        "buffered_claimed"):
                v = counters.get(f"{pfx}/{req}")
                if not isinstance(v, int):
                    fail(f"{path}: counter {pfx}/{req} absent")
                c[req] = v
            g = {}
            for req in ("posted_pending", "unexpected_pending"):
                v = gauges.get(f"{pfx}/{req}")
                if not isinstance(v, (int, float)) or v < 0:
                    fail(f"{path}: gauge {pfx}/{req} absent or negative")
                g[req] = round(v)
            laws = (
                ("recvs_posted == recvs_matched + posted_pending",
                 c["recvs_posted"], c["recvs_matched"] + g["posted_pending"]),
                ("arrivals == arrivals_matched + arrivals_buffered",
                 c["arrivals"], c["arrivals_matched"]
                 + c["arrivals_buffered"]),
                ("arrivals_buffered == buffered_claimed + unexpected_pending",
                 c["arrivals_buffered"], c["buffered_claimed"]
                 + g["unexpected_pending"]),
                ("recvs_matched == arrivals_matched + buffered_claimed",
                 c["recvs_matched"], c["arrivals_matched"]
                 + c["buffered_claimed"]),
            )
            for law, lhs, rhs in laws:
                if lhs != rhs:
                    fail(f"{path}: {pfx}: {law} violated ({lhs} != {rhs})")
            posted_sum += c["recvs_posted"]
        node_recvs = counters.get(f"{node}/nm/recvs")
        if posted_sum != node_recvs:
            fail(f"{path}: {node}: shard recvs_posted sum {posted_sum} != "
                 f"{node}/nm/recvs {node_recvs}")
        total_shards += len(shards)
        total_posted += posted_sum
    print(f"check_metrics: {path}: shards ok ({total_shards} shards on "
          f"{len(nodes)} nodes conserve {total_posted} posted receives)")


def check_spans(path: str, doc: dict) -> None:
    counters = doc["metrics"]["counters"]
    tracing = doc.get("tracing")
    if not isinstance(tracing, dict):
        fail(f"{path}: tracing section missing (ClusterConfig::tracing off?)")
    for field in ("events", "spans", "open_spans", "traces",
                  "traces_complete"):
        if not isinstance(tracing.get(field), int):
            fail(f"{path}: tracing.{field} missing")
    if tracing["events"] == 0:
        fail(f"{path}: tracing enabled but no events recorded")
    if tracing["open_spans"] != 0:
        fail(f"{path}: {tracing['open_spans']} spans never closed")
    # Cross-check the assembly totals against the per-node recorder
    # counters — the two are produced by independent code paths.
    opened = sum(v for name, v in counters.items()
                 if name.endswith("/trace/spans_opened"))
    closed = sum(v for name, v in counters.items()
                 if name.endswith("/trace/spans_closed"))
    events = sum(v for name, v in counters.items()
                 if name.endswith("/trace/events"))
    if opened == 0:
        fail(f"{path}: no nodeN/rpc/trace counters (recorders not bound)")
    if opened != closed:
        fail(f"{path}: spans_opened {opened} != spans_closed {closed}")
    if opened != tracing["spans"]:
        fail(f"{path}: recorder counters opened {opened} spans but the "
             f"assembly holds {tracing['spans']}")
    if events != tracing["events"]:
        fail(f"{path}: recorder counters hold {events} events but the "
             f"assembly holds {tracing['events']}")

    exemplars = tracing.get("exemplars")
    if not isinstance(exemplars, list) or not exemplars:
        fail(f"{path}: tracing.exemplars missing or empty")
    reconstructed = 0
    for ex in exemplars:
        tid = ex.get("trace_id")
        spans = ex.get("spans")
        if not isinstance(spans, list) or not spans:
            fail(f"{path}: trace {tid}: no spans")
        by_id = {}
        for s in spans:
            if s["id"] in by_id:
                fail(f"{path}: trace {tid}: duplicate span id {s['id']}")
            by_id[s["id"]] = s
        roots = 0
        for s in spans:
            if not s["closed"]:
                fail(f"{path}: trace {tid}: span {s['id']} never closed")
            if s["begin_ns"] > s["end_ns"]:
                fail(f"{path}: trace {tid}: span {s['id']} ends before "
                     f"it begins")
            if s["parent"] == 0:
                roots += 1
            elif s["parent"] not in by_id:
                fail(f"{path}: trace {tid}: span {s['id']} parent "
                     f"{s['parent']} does not resolve within the trace")
        if roots != 1:
            fail(f"{path}: trace {tid}: {roots} root spans, expected 1")
        for s in spans:  # acyclic: every parent chain must reach the root
            hops, cur = 0, s
            while cur["parent"] != 0:
                cur = by_id[cur["parent"]]
                hops += 1
                if hops > len(spans):
                    fail(f"{path}: trace {tid}: span parent cycle via "
                         f"{s['id']}")
        cp = ex.get("critical_path")
        if not isinstance(cp, list) or not cp:
            fail(f"{path}: trace {tid}: no critical path")
        total = 0
        for i, seg in enumerate(cp):
            if seg["to_ns"] < seg["from_ns"]:
                fail(f"{path}: trace {tid}: negative segment "
                     f"{seg['segment']}")
            if i + 1 < len(cp) and seg["to_ns"] != cp[i + 1]["from_ns"]:
                fail(f"{path}: trace {tid}: critical path not contiguous "
                     f"at {seg['segment']}")
            total += seg["to_ns"] - seg["from_ns"]
        e2e = ex["e2e_ns"]
        if total > e2e:
            fail(f"{path}: trace {tid}: segment sum {total} ns exceeds "
                 f"trace duration {e2e} ns")
        if ex.get("complete") and ex.get("kind") == "rpc":
            if abs(total - e2e) > 0.01 * e2e:
                fail(f"{path}: trace {tid}: segments sum to {total} ns "
                     f"but e2e is {e2e} ns (>1% reconstruction error)")
            reconstructed += 1
    if reconstructed == 0:
        fail(f"{path}: no complete RPC exemplar to reconstruct")
    print(f"check_metrics: {path}: spans ok ({tracing['spans']} spans "
          f"closed across {tracing['traces']} traces; {len(exemplars)} "
          f"exemplars, {reconstructed} critical paths reconstruct e2e "
          f"within 1%)")


def main() -> None:
    args = sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        sys.exit(0 if args else 2)

    offload = check_document(args[0])
    if "--expect-coll" in args:
        check_coll(args[0], offload)
        args = [a for a in args if a != "--expect-coll"]
    if "--expect-locks" in args:
        check_locks(args[0], offload)
        args = [a for a in args if a != "--expect-locks"]
    if "--expect-rpc" in args:
        check_rpc(args[0], offload)
        args = [a for a in args if a != "--expect-rpc"]
    if "--expect-rma" in args:
        check_rma(args[0], offload)
        args = [a for a in args if a != "--expect-rma"]
    if "--expect-shards" in args:
        check_shards(args[0], offload)
        args = [a for a in args if a != "--expect-shards"]
    if "--expect-spans" in args:
        check_spans(args[0], offload)
        args = [a for a in args if a != "--expect-spans"]
    if len(args) >= 3 and args[1] == "--expect-offload-beats":
        baseline = check_document(args[2])
        off_crit = offload["attribution"]["critical_path_us"]["mean"]
        base_crit = baseline["attribution"]["critical_path_us"]["mean"]
        if offload["attribution"]["offloaded"] == 0:
            fail("offload run reports zero offloaded requests")
        if not off_crit < base_crit:
            fail(f"offload critical path {off_crit:.2f} us is not below "
                 f"baseline {base_crit:.2f} us")
        print(f"check_metrics: offload beats baseline "
              f"({off_crit:.2f} < {base_crit:.2f} us critical path)")


if __name__ == "__main__":
    main()
