// One-sided halo exchange with a passive target (nmad/rma): the MPI-3
// RMA idiom — win_create, lock/put/unlock, fence — on the simulated
// stack.  Four nodes expose a two-slot window and push an 8-byte boundary
// value into each ring neighbour under a fence epoch; then node 0 runs a
// passive-target pass: while node 1 sits in a pure compute phase (zero
// library calls), node 0 locks its window, puts a slab, accumulates into
// a counter slot, reads both back with get, and unlocks.  With PIOMan,
// node 1's idle cores apply everything in engine context — the target
// thread never helps.
//
//   $ ./examples/rma_halo
#include <cstdio>
#include <cstring>

#include "nmad/rma/rma.hpp"
#include "pm2/cluster.hpp"
#include "pm2/report.hpp"

int main() {
  using namespace pm2;
  using nm::rma::AccOp;
  using nm::rma::AccType;

  constexpr unsigned kNodes = 4;
  constexpr std::size_t kSlot = 8;  // ring slots: [from-left][from-right]
  constexpr std::size_t kSlab = 2048;

  ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.cpus_per_node = 4;
  cfg.pioman = true;  // passive-target progression needs the engine
  cfg.rma = true;
  Cluster cluster(cfg);

  // Window layout: two u64 ring slots, then a slab area and a counter.
  std::vector<std::vector<std::byte>> wins(
      kNodes, std::vector<std::byte>(2 * kSlot + kSlab + 8));

  for (unsigned r = 0; r < kNodes; ++r) {
    cluster.run_on(r, [&cluster, &wins, r] {
      nm::rma::Engine& rma = cluster.rma(r);
      const nm::rma::WinId win = rma.win_create(wins[r]);

      // ---- Phase 1: fence-epoch ring halo (everyone participates) ----
      const unsigned right = (r + 1) % kNodes;
      const unsigned left = (r + kNodes - 1) % kNodes;
      const std::uint64_t boundary = 100 + r;
      rma.fence(win);  // open the exposure on every rank
      rma.put(win, right, 0,
              std::as_bytes(std::span(&boundary, 1)));  // their slot 0
      rma.put(win, left, kSlot,
              std::as_bytes(std::span(&boundary, 1)));  // their slot 1
      rma.fence(win);  // close: flush_all + barrier — halos are settled
      std::uint64_t from_left = 0;
      std::uint64_t from_right = 0;
      std::memcpy(&from_left, wins[r].data(), kSlot);
      std::memcpy(&from_right, wins[r].data() + kSlot, kSlot);
      std::printf("[node %u] halo: left sent %llu, right sent %llu\n", r,
                  static_cast<unsigned long long>(from_left),
                  static_cast<unsigned long long>(from_right));

      // ---- Phase 2: passive target (origin 0, target 1) ----
      if (r == 1) {
        // The target's whole contribution: being busy.  Its idle cores
        // apply node 0's puts, accumulates, and gets underneath this.
        marcel::this_thread::compute(300 * kUs);
      } else if (r == 0) {
        nm::rma::Engine& eng = cluster.rma(0);
        std::vector<std::byte> slab(kSlab, std::byte{0x42});
        std::vector<std::byte> readback(kSlab);
        const std::uint64_t bump = 7;
        eng.lock(win, 1);
        eng.put(win, 1, 2 * kSlot, slab);
        eng.accumulate(win, 1, 2 * kSlot + kSlab,
                       std::as_bytes(std::span(&bump, 1)), AccOp::kSum,
                       AccType::kU64);
        eng.flush(win, 1);  // both applied remotely — get sees them
        eng.get(win, 1, 2 * kSlot, readback);
        eng.unlock(win, 1);
        std::uint64_t counter = 0;
        std::memcpy(&counter, wins[1].data() + 2 * kSlot + kSlab, 8);
        std::printf("[node 0] passive pass: readback %s, counter %llu "
                    "(target made zero calls: api_calls=%llu)\n",
                    readback == slab ? "ok" : "MISMATCH",
                    static_cast<unsigned long long>(counter),
                    static_cast<unsigned long long>(
                        cluster.rma(1).stats().api_calls));
      }
    });
  }

  cluster.run();

  std::printf("\n%s", format_report(cluster).c_str());
  return 0;
}
