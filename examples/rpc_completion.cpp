// RPC + remotable completion: the pm2_rawrpc / pm2_completion idiom from
// the original PM2 ("Getting started" dsm-complex1.c), on the simulated
// stack.  Node 0 fires a few RPCs at every other node; each request
// carries a thread id, an increment count, and a *completion ref* for a
// single counted completion living on node 0.  The remote handler runs as
// its own marcel thread, bumps the node-local counter, and signals the
// forwarded ref — remotely, back across the wire.  Node 0 blocks in one
// wait() until every worker everywhere has signalled.
//
//   $ ./examples/rpc_completion
#include <cstdio>

#include "pm2/cluster.hpp"
#include "pm2/report.hpp"

int main() {
  using namespace pm2;

  constexpr unsigned kThreadsPerNode = 3;
  constexpr std::uint64_t kIterations = 20;
  constexpr std::uint32_t kIncrService = 1;

  // 4 nodes × 4 cores, PIOMan enabled, RPC engines on (cfg.rpc).
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.cpus_per_node = 4;
  cfg.pioman = true;
  cfg.rpc = true;
  Cluster cluster(cfg);

  // Per-node shared counter, protected only by the fact that handler
  // threads on one simulated node are fibers of one OS thread.
  std::vector<std::uint64_t> counters(cfg.nodes, 0);

  // Every node registers the service (same id everywhere, like
  // pm2_rawrpc_register before pm2_init).  The handler is the ported
  // f(): unpack args, do the work, signal the forwarded completion.
  for (unsigned n = 0; n < cfg.nodes; ++n) {
    cluster.rpc(n).register_service(kIncrService, [&, n](rpc::Context& ctx) {
      const std::uint64_t id = ctx.args().u64();
      const std::uint64_t iters = ctx.args().u64();
      const rpc::CompletionRef done = ctx.args().completion();
      std::printf("[node %u] worker %llu from node %u running\n", n,
                  static_cast<unsigned long long>(id), ctx.origin());
      for (std::uint64_t i = 0; i < iters; ++i) {
        marcel::this_thread::compute(1 * kUs);
        ++counters[n];
      }
      ctx.engine().signal(done);  // travels back to the ref's home node
    });
  }

  // Master (node 0): one counted completion for the whole fan-out —
  // pm2_completion_init + a wait per signal, collapsed into a count.
  cluster.run_on(0, [&] {
    rpc::Engine& eng = cluster.rpc(0);
    const std::uint32_t fan = kThreadsPerNode * (cfg.nodes - 1);
    rpc::Completion all_done(eng, fan);
    std::uint64_t id = 0;
    for (unsigned node = 1; node < cfg.nodes; ++node) {
      for (unsigned t = 0; t < kThreadsPerNode; ++t) {
        ++id;
        // pm2_rawrpc_begin / pack / pack_completion / rawrpc_end.
        eng.call(node, kIncrService, [&](rpc::ArgWriter& w) {
          w.u64(id);
          w.u64(kIterations);
          w.completion(all_done.ref());
        });
      }
    }
    const SimTime t0 = cluster.now();
    all_done.wait();
    std::printf("[node 0] %u workers done at t=%.2f us (waited %.2f us)\n",
                fan, to_us(cluster.now()), to_us(cluster.now() - t0));
  });

  cluster.run();

  for (unsigned n = 1; n < cfg.nodes; ++n) {
    std::printf("node %u counter = %llu (expected %llu)\n", n,
                static_cast<unsigned long long>(counters[n]),
                static_cast<unsigned long long>(kThreadsPerNode * kIterations));
  }
  const auto& st = cluster.rpc(0).stats();
  std::printf("\n[node 0] rpc: %llu issued, %llu signals delivered\n",
              static_cast<unsigned long long>(st.issued),
              static_cast<unsigned long long>(st.signals_delivered));
  std::printf("\n%s", format_report(cluster).c_str());
  return 0;
}
