// A pipelined producer → consumer across two nodes: the producer streams
// chunks while computing the next one; the consumer post-processes each
// chunk while the following one is in flight.  Demonstrates that the
// sustained pipeline rate with PIOMan approaches max(compute, transfer)
// per stage instead of their sum.
//
//   $ ./examples/pipeline_overlap [chunks] [chunk_kb]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pm2/cluster.hpp"

namespace {

double run_pipeline(bool pioman, int chunks, std::size_t chunk_bytes,
                    pm2::SimDuration stage_compute) {
  using namespace pm2;
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cpus_per_node = 8;
  cfg.pioman = pioman;
  Cluster cluster(cfg);

  // Two send buffers so chunk i+1 can be produced while chunk i drains.
  std::vector<std::vector<std::byte>> out(2,
      std::vector<std::byte>(chunk_bytes, std::byte{1}));
  std::vector<std::vector<std::byte>> in(2,
      std::vector<std::byte>(chunk_bytes));
  SimTime elapsed = 0;

  cluster.run_on(0, [&] {
    const SimTime t0 = cluster.now();
    nm::Request* prev = nullptr;
    for (int i = 0; i < chunks; ++i) {
      marcel::this_thread::compute(stage_compute);  // produce chunk i
      if (prev != nullptr) cluster.comm(0).wait(prev);
      prev = cluster.comm(0).isend(1, 1, out[i % 2]);
    }
    cluster.comm(0).wait(prev);
    elapsed = cluster.now() - t0;
  });
  cluster.run_on(1, [&] {
    nm::Request* next = cluster.comm(1).irecv(0, 1, in[0]);
    for (int i = 0; i < chunks; ++i) {
      cluster.comm(1).wait(next);
      next = i + 1 < chunks ? cluster.comm(1).irecv(0, 1, in[(i + 1) % 2])
                            : nullptr;
      marcel::this_thread::compute(stage_compute);  // consume chunk i
    }
  });
  cluster.run();
  return to_us(elapsed) / chunks;
}

}  // namespace

int main(int argc, char** argv) {
  const int chunks = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::size_t chunk_kb =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;
  const pm2::SimDuration stage = 25 * pm2::kUs;

  std::printf("Pipeline: %d chunks of %zu KiB, %0.f us compute per stage\n\n",
              chunks, chunk_kb, pm2::to_us(stage));
  const double base = run_pipeline(false, chunks, chunk_kb * 1024, stage);
  const double piom = run_pipeline(true, chunks, chunk_kb * 1024, stage);
  std::printf("original NewMadeleine : %8.2f us per chunk\n", base);
  std::printf("PIOMan engine         : %8.2f us per chunk\n", piom);
  std::printf("pipeline speedup      : %8.2f %%\n",
              (base - piom) / base * 100.0);
  std::printf("\nWith PIOMan the injection of chunk i overlaps the\n"
              "production of chunk i+1, so the per-chunk cost approaches\n"
              "max(compute, inject) instead of compute + inject.\n");
  return 0;
}
