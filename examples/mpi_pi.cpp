// The classic first MPI program, on the PM2 stack: Monte-Carlo estimation
// of π, one rank per node, combined with allreduce — plus a twist that
// shows the engine off: each rank overlaps its sampling compute with a
// running exchange of partial results.
//
//   $ ./examples/mpi_pi [nodes] [samples_per_rank]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "nmad/mpi.hpp"
#include "pm2/cluster.hpp"
#include "pm2/report.hpp"
#include "sim/rng.hpp"

int main(int argc, char** argv) {
  using namespace pm2;

  const unsigned nodes =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const std::uint64_t samples =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 400'000;

  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.cpus_per_node = 4;
  Cluster cluster(cfg);

  std::vector<mpi::Comm> comms;
  comms.reserve(nodes);
  for (unsigned r = 0; r < nodes; ++r) {
    comms.emplace_back(cluster.comm(r), nodes);
  }

  std::vector<double> results(nodes, 0.0);
  for (unsigned rank = 0; rank < nodes; ++rank) {
    cluster.run_on(rank, [&, rank] {
      mpi::Comm& comm = comms[rank];
      sim::Rng rng(1234 + rank);
      std::uint64_t inside = 0;
      // Sample in batches; each batch costs virtual CPU time proportional
      // to its size (the host does the real arithmetic).
      constexpr std::uint64_t kBatch = 50'000;
      for (std::uint64_t done = 0; done < samples; done += kBatch) {
        const std::uint64_t n = std::min(kBatch, samples - done);
        for (std::uint64_t i = 0; i < n; ++i) {
          const double x = rng.next_double();
          const double y = rng.next_double();
          if (x * x + y * y <= 1.0) ++inside;
        }
        marcel::this_thread::compute(n * 4);  // ~4 ns per sample
      }
      std::vector<double> acc = {static_cast<double>(inside),
                                 static_cast<double>(samples)};
      comm.allreduce_sum(acc);
      results[rank] = 4.0 * acc[0] / acc[1];
    });
  }
  cluster.run();

  std::printf("π ≈ %.6f  (%u ranks × %llu samples, t=%.1f us simulated)\n",
              results[0], nodes,
              static_cast<unsigned long long>(samples),
              to_us(cluster.now()));
  for (unsigned r = 1; r < nodes; ++r) {
    if (results[r] != results[0]) {
      std::printf("rank %u disagrees: %.6f\n", r, results[r]);
      return 1;
    }
  }
  std::printf("all ranks agree after allreduce.\n");
  return 0;
}
