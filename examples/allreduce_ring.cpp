// Ring all-reduce over N simulated nodes — the communication pattern of
// data-parallel training and of many collective libraries — implemented
// directly on the NewMadeleine isend/irecv API.  Each step sends a vector
// chunk to the right neighbour while reducing the chunk that arrived from
// the left; PIOMan keeps the ring moving while the reduction computes.
//
//   $ ./examples/allreduce_ring [nodes] [elements]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "pm2/cluster.hpp"

namespace {

using Vec = std::vector<double>;

std::span<const std::byte> as_bytes(const Vec& v, std::size_t lo,
                                    std::size_t n) {
  return std::as_bytes(std::span<const double>(v).subspan(lo, n));
}
std::span<std::byte> as_writable_bytes(Vec& v, std::size_t lo,
                                       std::size_t n) {
  return std::as_writable_bytes(std::span<double>(v).subspan(lo, n));
}

double run_allreduce(bool pioman, unsigned nodes, std::size_t elements,
                     std::vector<Vec>& data) {
  using namespace pm2;
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.cpus_per_node = 4;
  cfg.pioman = pioman;
  Cluster cluster(cfg);
  const std::size_t chunk = elements / nodes;
  SimTime finish = 0;

  for (unsigned rank = 0; rank < nodes; ++rank) {
    cluster.run_on(rank, [&, rank] {
      Vec& mine = data[rank];
      Vec inbox(chunk);
      const unsigned right = (rank + 1) % nodes;
      const unsigned left = (rank + nodes - 1) % nodes;
      nm::Core& comm = cluster.comm(rank);

      // Phase 1: reduce-scatter.  Step s: send chunk (rank-s), reduce
      // chunk (rank-s-1) arriving from the left.
      for (unsigned s = 0; s + 1 < nodes; ++s) {
        const std::size_t send_c = (rank + nodes - s) % nodes;
        const std::size_t recv_c = (rank + nodes - s - 1) % nodes;
        nm::Request* rr =
            comm.irecv(left, 100 + s, as_writable_bytes(inbox, 0, chunk));
        nm::Request* sr =
            comm.isend(right, 100 + s, as_bytes(mine, send_c * chunk, chunk));
        comm.wait(rr);
        // The reduction itself: modelled compute + the actual arithmetic.
        marcel::this_thread::compute(static_cast<SimDuration>(chunk) * 2);
        for (std::size_t i = 0; i < chunk; ++i) {
          mine[recv_c * chunk + i] += inbox[i];
        }
        comm.wait(sr);
      }
      // Phase 2: all-gather.  Step s: send the chunk just completed.
      for (unsigned s = 0; s + 1 < nodes; ++s) {
        const std::size_t send_c = (rank + 1 + nodes - s) % nodes;
        const std::size_t recv_c = (rank + nodes - s) % nodes;
        nm::Request* rr = comm.irecv(
            left, 200 + s, as_writable_bytes(mine, recv_c * chunk, chunk));
        nm::Request* sr =
            comm.isend(right, 200 + s, as_bytes(mine, send_c * chunk, chunk));
        comm.wait(rr);
        comm.wait(sr);
      }
      if (rank == 0) finish = cluster.now();
    });
  }
  cluster.run();
  return pm2::to_us(finish);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned nodes =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const std::size_t elements =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 64 * 1024;

  std::printf("Ring all-reduce: %u nodes, %zu doubles (%zu KiB)\n\n", nodes,
              elements, elements * sizeof(double) / 1024);

  // Build identical inputs for both runs; verify the reduction result.
  auto make_data = [&] {
    std::vector<Vec> d(nodes, Vec(elements));
    for (unsigned r = 0; r < nodes; ++r) {
      for (std::size_t i = 0; i < elements; ++i) {
        d[r][i] = static_cast<double>(r + 1) * 0.25;
      }
    }
    return d;
  };

  auto base_data = make_data();
  const double base = run_allreduce(false, nodes, elements, base_data);
  auto piom_data = make_data();
  const double piom = run_allreduce(true, nodes, elements, piom_data);

  const double expected =
      static_cast<double>(nodes) * (nodes + 1) / 2.0 * 0.25;
  bool correct = true;
  for (unsigned r = 0; r < nodes && correct; ++r) {
    for (std::size_t i = 0; i < elements; i += elements / 7 + 1) {
      if (piom_data[r][i] != expected) correct = false;
    }
  }

  std::printf("original NewMadeleine : %10.2f us\n", base);
  std::printf("PIOMan engine         : %10.2f us\n", piom);
  std::printf("speedup               : %10.2f %%\n",
              (base - piom) / base * 100.0);
  std::printf("result check          : %s (expected %.2f per element)\n",
              correct ? "OK" : "WRONG", expected);
  return correct ? 0 : 1;
}
