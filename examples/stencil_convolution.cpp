// The paper's convolution meta-application (§4.3), runnable both with the
// original app-driven NewMadeleine and with the PIOMan engine, so the
// effect of communication offloading is directly visible.
//
//   $ ./examples/stencil_convolution [grid_dim] [iterations]
#include <cstdio>
#include <cstdlib>

#include "pm2/stencil.hpp"

int main(int argc, char** argv) {
  using namespace pm2;

  const unsigned dim =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 10;

  apps::StencilConfig scfg;
  scfg.grid_rows = dim;
  scfg.grid_cols = dim;
  scfg.frontier_bytes = 16 * 1024;
  scfg.iterations = iterations;

  ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.cpus_per_node = 8;

  std::printf("Convolution stencil: %ux%u threads over %u nodes "
              "(%u cores each), %d iterations, %zu-byte frontiers\n\n",
              dim, dim, ccfg.nodes, ccfg.cpus_per_node, iterations,
              scfg.frontier_bytes);

  ccfg.pioman = false;
  const apps::StencilResult base = apps::run_stencil(scfg, ccfg);
  std::printf("original NewMadeleine : %8.2f us/iteration "
              "(%llu messages)\n",
              base.iteration_us,
              static_cast<unsigned long long>(base.messages));

  ccfg.pioman = true;
  const apps::StencilResult offl = apps::run_stencil(scfg, ccfg);
  std::printf("PIOMan engine         : %8.2f us/iteration "
              "(%llu submissions ran on idle cores)\n",
              offl.iteration_us,
              static_cast<unsigned long long>(offl.offloaded_submissions));

  const double speedup =
      (base.iteration_us - offl.iteration_us) / base.iteration_us * 100.0;
  std::printf("speedup               : %8.2f %%\n", speedup);
  return 0;
}
