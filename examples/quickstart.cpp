// Quickstart: bring up a simulated 2-node cluster running the full PM2
// stack (Marcel + PIOMan + NewMadeleine), exchange a few messages, and
// show the overlap of communication and computation.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <vector>

#include "pm2/cluster.hpp"
#include "pm2/report.hpp"

int main() {
  using namespace pm2;

  // 2 nodes × 8 cores, PIOMan enabled (the paper's engine).
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cpus_per_node = 8;
  cfg.pioman = true;
  Cluster cluster(cfg);

  std::vector<std::byte> message(4096, std::byte{'x'});
  std::vector<std::byte> inbox(4096);

  // Node 0: non-blocking send, 50us of "computation", then wait.  With
  // PIOMan the expensive injection happens on an idle core while we
  // compute.
  cluster.run_on(0, [&] {
    const SimTime t0 = cluster.now();
    nm::Request* send = cluster.comm(0).isend(/*dst=*/1, /*tag=*/7, message);
    std::printf("[node 0] isend returned after %.2f us (request only)\n",
                to_us(cluster.now() - t0));
    marcel::this_thread::compute(50 * kUs);
    cluster.comm(0).wait(send);
    std::printf("[node 0] send complete at t=%.2f us "
                "(compute was 50 us: fully overlapped)\n",
                to_us(cluster.now() - t0));
  });

  // Node 1: the mirrored receive.
  cluster.run_on(1, [&] {
    nm::Request* recv = cluster.comm(1).irecv(/*src=*/0, /*tag=*/7, inbox);
    marcel::this_thread::compute(50 * kUs);
    cluster.comm(1).wait(recv);
    std::printf("[node 1] received %zu bytes, first byte '%c'\n",
                inbox.size(), static_cast<char>(inbox[0]));
  });

  cluster.run();  // run the simulation to quiescence

  // Where did the protocol work actually happen?
  const auto& piom = cluster.server(0)->stats();
  std::printf("\n[node 0] PIOMan: %llu submissions posted, "
              "%llu offloaded to idle cores, %llu flushed in wait\n",
              static_cast<unsigned long long>(piom.posted_items),
              static_cast<unsigned long long>(piom.posted_offloaded),
              static_cast<unsigned long long>(piom.posted_flushed));
  std::printf("\n%s", format_report(cluster).c_str());
  return 0;
}
